#include "synth/scenario_store.h"

#include <utility>

#include "net/graph_io.h"
#include "obs/json.h"
#include "store/snapshot.h"

namespace geonet::synth {

namespace {

constexpr std::uint32_t kSectionScenario = store::fourcc('S', 'C', 'E', 'N');
constexpr std::uint32_t kSectionGraph = store::fourcc('G', 'R', 'P', 'H');

void encode_processing_stats(store::ByteWriter& out,
                             const ProcessingStats& stats) {
  out.u64(stats.input_nodes);
  out.u64(stats.unmapped_nodes);
  out.u64(stats.tie_discarded_routers);
  out.u64(stats.as_unmapped_nodes);
  out.u64(stats.output_nodes);
  out.u64(stats.output_links);
  out.u64(stats.distinct_locations);
}

ProcessingStats decode_processing_stats(store::ByteReader& in) {
  ProcessingStats stats;
  stats.input_nodes = static_cast<std::size_t>(in.u64());
  stats.unmapped_nodes = static_cast<std::size_t>(in.u64());
  stats.tie_discarded_routers = static_cast<std::size_t>(in.u64());
  stats.as_unmapped_nodes = static_cast<std::size_t>(in.u64());
  stats.output_nodes = static_cast<std::size_t>(in.u64());
  stats.output_links = static_cast<std::size_t>(in.u64());
  stats.distinct_locations = static_cast<std::size_t>(in.u64());
  return stats;
}

void encode_fault_stats(store::ByteWriter& out,
                        const fault::FaultStats& stats) {
  out.u64(stats.monitors_killed);
  out.u64(stats.destinations_skipped);
  out.u64(stats.routers_throttled);
  out.u64(stats.traces_truncated);
  out.u64(stats.probes_lost);
  out.u64(stats.geo_corrupted);
  out.u64(stats.geo_garbled);
}

fault::FaultStats decode_fault_stats(store::ByteReader& in) {
  fault::FaultStats stats;
  stats.monitors_killed = in.u64();
  stats.destinations_skipped = in.u64();
  stats.routers_throttled = in.u64();
  stats.traces_truncated = in.u64();
  stats.probes_lost = in.u64();
  stats.geo_corrupted = in.u64();
  stats.geo_garbled = in.u64();
  return stats;
}

void encode_probe_stats(store::ByteWriter& out,
                        const fault::ProbeStats& stats) {
  out.u64(stats.probes);
  out.u64(stats.attempts);
  out.u64(stats.retries);
  out.u64(stats.losses);
  out.u64(stats.giveups);
  out.f64(stats.simulated_wait_ms);
}

fault::ProbeStats decode_probe_stats(store::ByteReader& in) {
  fault::ProbeStats stats;
  stats.probes = in.u64();
  stats.attempts = in.u64();
  stats.retries = in.u64();
  stats.losses = in.u64();
  stats.giveups = in.u64();
  stats.simulated_wait_ms = in.f64();
  return stats;
}

}  // namespace

std::size_t dataset_slot(DatasetKind dataset, MapperKind mapper) noexcept {
  return (dataset == DatasetKind::kSkitter ? 0u : 2u) +
         (mapper == MapperKind::kIxMapper ? 0u : 1u);
}

ScenarioArtifacts snapshot_artifacts(const Scenario& scenario) {
  ScenarioArtifacts artifacts;
  for (const DatasetKind dataset :
       {DatasetKind::kSkitter, DatasetKind::kMercator}) {
    for (const MapperKind mapper :
         {MapperKind::kIxMapper, MapperKind::kEdgeScape}) {
      const std::size_t i = dataset_slot(dataset, mapper);
      artifacts.graphs[i] = scenario.graph(dataset, mapper);
      artifacts.stats[i] = scenario.stats(dataset, mapper);
    }
  }
  artifacts.fault_stats = scenario.fault_stats();
  artifacts.probe_stats = scenario.probe_stats();
  return artifacts;
}

std::vector<std::byte> encode_scenario_artifacts(
    const ScenarioArtifacts& artifacts) {
  store::SnapshotWriter writer;
  store::ByteWriter body;
  for (const ProcessingStats& stats : artifacts.stats) {
    encode_processing_stats(body, stats);
  }
  encode_fault_stats(body, artifacts.fault_stats);
  encode_probe_stats(body, artifacts.probe_stats);
  writer.add_section(kSectionScenario, body.take());
  for (const net::AnnotatedGraph& graph : artifacts.graphs) {
    store::ByteWriter graph_body;
    net::encode_graph(graph_body, graph);
    writer.add_section(kSectionGraph, graph_body.take());
  }
  return writer.finish();
}

err::Result<ScenarioArtifacts> decode_scenario_artifacts(
    std::span<const std::byte> bytes) {
  auto parsed = store::SnapshotView::parse(bytes);
  if (!parsed.is_ok()) return parsed.status();
  const store::SnapshotView& view = parsed.value();

  const auto* scenario_section = view.find(kSectionScenario);
  if (scenario_section == nullptr) {
    return err::Status::data_loss("scenario snapshot: no 'SCEN' section");
  }
  ScenarioArtifacts artifacts;
  store::ByteReader body(scenario_section->payload);
  for (ProcessingStats& stats : artifacts.stats) {
    stats = decode_processing_stats(body);
  }
  artifacts.fault_stats = decode_fault_stats(body);
  artifacts.probe_stats = decode_probe_stats(body);
  if (!body.ok()) {
    return err::Status::data_loss("scenario snapshot: truncated 'SCEN'");
  }

  const auto graph_sections = view.find_all(kSectionGraph);
  if (graph_sections.size() != artifacts.graphs.size()) {
    return err::Status::data_loss(
        "scenario snapshot: expected 4 'GRPH' sections, found " +
        std::to_string(graph_sections.size()));
  }
  for (std::size_t i = 0; i < graph_sections.size(); ++i) {
    store::ByteReader reader(graph_sections[i].payload);
    auto graph = net::decode_graph(reader);
    if (!graph.is_ok()) return graph.status();
    artifacts.graphs[i] = std::move(graph).value();
  }
  return artifacts;
}

store::Fingerprint scenario_fingerprint(const ScenarioOptions& options) {
  store::Fingerprint fp = store::Fingerprint::with_provenance();
  fp.add("op", "scenario");
  fp.add("scale", options.scale);
  fp.add("seed", options.seed);
  fp.add("mechanical_pipeline", options.mechanical_pipeline);
  fp.add("mercator_epoch_factor", options.mercator_epoch_factor);
  const bool faulted = options.faults && !options.faults->empty();
  fp.add("faulted", faulted);
  // The plan's canonical JSON echo covers every clause and the fault
  // seed, so any change to the injected damage changes the key.
  if (faulted) fp.add("fault_plan", options.faults->to_json());
  return fp;
}

std::string scenario_stats_json(const std::array<ProcessingStats, 4>& stats) {
  obs::JsonWriter json;
  json.begin_object();
  for (const DatasetKind dataset :
       {DatasetKind::kSkitter, DatasetKind::kMercator}) {
    for (const MapperKind mapper :
         {MapperKind::kIxMapper, MapperKind::kEdgeScape}) {
      const std::string key =
          std::string(to_string(dataset)) + "+" + to_string(mapper);
      json.key(key).raw(
          processing_stats_json(stats[dataset_slot(dataset, mapper)]));
    }
  }
  json.end_object();
  return json.str();
}

std::string scenario_degradation_json(
    const std::optional<fault::FaultPlan>& plan,
    const fault::FaultStats& fault_stats,
    const fault::ProbeStats& probe_stats) {
  obs::JsonWriter json;
  json.begin_object();
  if (plan && !plan->empty()) {
    json.key("plan").raw(plan->to_json());
    json.key("faults").raw(fault_stats.to_json());
    json.key("probes").raw(probe_stats.to_json());
  }
  json.end_object();
  return json.str();
}

}  // namespace geonet::synth
