#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/geo_point.h"
#include "net/topology.h"
#include "population/synth_population.h"
#include "synth/bgp.h"

namespace geonet::synth {

/// One point of presence of an AS: a location plus the routers placed there.
struct Site {
  geo::GeoPoint center;
  std::vector<net::RouterId> routers;
};

/// A synthetic autonomous system.
struct AsInfo {
  std::uint32_t asn = 0;
  std::size_t profile_index = 0;   ///< home economic region
  geo::GeoPoint home;              ///< registered headquarters
  std::vector<Site> sites;
  std::vector<net::RouterId> routers;
  std::vector<net::Prefix> prefixes;  ///< allocated address blocks
  bool announced = true;              ///< present in the BGP table
};

/// Knobs of the synthetic-Internet grower. Defaults reproduce the
/// qualitative structure the paper measures; the ablation benches sweep
/// the interesting ones.
struct GroundTruthOptions {
  /// Fraction of the paper's per-region interface counts to build.
  double interface_scale = 0.15;
  /// Conversion from interface budget to router count (a router with mean
  /// degree k carries ~k link interfaces plus a loopback).
  double interfaces_per_router = 4.8;

  // --- AS population ---
  double as_size_pareto_alpha = 0.9;  ///< long-tail exponent of router counts
  std::uint32_t min_as_size = 2;
  double max_as_size_fraction = 0.08; ///< cap, as fraction of region budget

  // --- geography of ASes ---
  double site_exponent = 0.55;   ///< sites ~ size^exponent
  /// Probability a small/medium AS is confined to a single location
  /// (enterprise networks); drives Figure 9's ~80% zero-area mass.
  double single_site_probability = 0.78;
  double near_site_scale_miles = 120.0;  ///< Pareto scale of near-home reach
  double near_site_pareto_alpha = 1.1;
  double small_as_far_site_probability = 0.25;  ///< mean per-AS trait
  double large_as_far_site_probability = 0.60;
  std::uint32_t large_as_threshold = 150;       ///< routers
  /// Site-count multiplier for large ASes (real carriers run far more
  /// POPs than the small-AS scaling law suggests).
  double large_site_multiplier = 2.5;
  /// Router share of an AS's k-th site decays as (k+1)^-exponent.
  double site_weight_exponent = 0.8;

  // --- link formation ---
  double intra_site_extra_links_per_router = 0.45;
  double inter_site_extra_fraction = 0.35;  ///< extra site-site links / site
  /// Probability a structural inter-site (backbone) link ignores distance.
  double structural_link_probability = 0.30;
  double as_edge_factor = 1.4;       ///< AS-graph edges per AS
  double links_per_as_edge = 1.5;    ///< mean physical links per AS edge
  double interdomain_distance_multiplier = 2.5;  ///< lambda stretch
  double interdomain_far_probability = 0.5;  ///< distance-free AS peerings
  double peering_colocated_probability = 0.4;///< realize at closest site pair

  // --- addressing / BGP ---
  std::uint8_t block_prefix_length = 20;
  double unannounced_fraction = 0.02;  ///< ASes missing from the BGP table
  double split_announcement_probability = 0.4;
  double foreign_more_specific_probability = 0.02;

  std::uint64_t seed = 42;
};

/// The synthetic "real Internet": a geographically embedded router-level
/// topology with AS structure, addressing, and a BGP view. Measurement
/// simulators observe this object; no analysis code ever reads it directly
/// (exactly as the paper never sees the true Internet).
class GroundTruth {
 public:
  static GroundTruth build(const population::WorldPopulation& world,
                           const GroundTruthOptions& options = {});

  [[nodiscard]] const net::Topology& topology() const noexcept { return topology_; }
  [[nodiscard]] const std::vector<AsInfo>& ases() const noexcept { return ases_; }
  [[nodiscard]] const BgpTable& bgp() const noexcept { return bgp_; }
  [[nodiscard]] const GroundTruthOptions& options() const noexcept { return options_; }

  /// AS record by AS number; nullptr if unknown.
  [[nodiscard]] const AsInfo* as_info(std::uint32_t asn) const noexcept;

  /// True (physical) location of an interface = its router's location.
  [[nodiscard]] const geo::GeoPoint& interface_location(net::InterfaceId id) const noexcept;

  /// Headquarters of the organisation owning the interface's router.
  [[nodiscard]] geo::GeoPoint interface_as_home(net::InterfaceId id) const noexcept;

  /// Ground-truth AS of the interface's router (which may differ from what
  /// BGP mapping of the interface *address* reports, as in reality).
  [[nodiscard]] std::uint32_t interface_true_asn(net::InterfaceId id) const noexcept;

  /// Interdomain link count in the ground truth (diagnostics).
  [[nodiscard]] std::size_t interdomain_link_count() const noexcept;

 private:
  net::Topology topology_;
  std::vector<AsInfo> ases_;
  std::unordered_map<std::uint32_t, std::size_t> asn_index_;
  BgpTable bgp_;
  GroundTruthOptions options_;
};

}  // namespace geonet::synth
