#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "fault/fault_plan.h"
#include "fault/probe.h"
#include "net/topology.h"
#include "synth/ground_truth.h"

namespace geonet::synth {

/// Parameters of the Mercator-style measurement simulation.
///
/// Mercator (the Scan project) maps from a single host, uses loose source
/// routing to discover lateral (non-tree) connectivity, and applies
/// UDP-probe alias resolution to collapse interface addresses onto
/// canonical routers. The observed object is a router-level graph — the
/// paper's key structural contrast with Skitter.
struct MercatorOptions {
  /// Probability a given non-tree link is discovered by source routing.
  double lateral_discovery_rate = 0.5;
  /// Probability alias resolution succeeds for a router with several
  /// observed interfaces; failures leave each interface as its own node.
  double alias_resolution_rate = 0.85;
  std::uint64_t seed = 11;
  /// Retry-with-timeout behaviour for discovery/alias probes under
  /// injected faults.
  fault::ProbePolicy probe;
  /// Failures injected into this run (probe-loss applies to lateral
  /// discovery probes; throttle degrades UDP alias probing). Monitor
  /// outages and trace truncation do not apply to a single-host mapper.
  /// nullopt or an empty plan keeps the run byte-identical to the
  /// fault-free simulation.
  std::optional<fault::FaultPlan> faults;
};

/// One observed (possibly partially-resolved) router.
struct ObservedRouter {
  std::vector<net::InterfaceId> interfaces;  ///< >= 1
  net::RouterId true_router = 0;             ///< ground truth (diagnostics)
};

/// Raw router-level observation, before geolocation or AS mapping.
struct RouterObservation {
  std::vector<ObservedRouter> routers;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;  ///< router idx
  std::size_t raw_interfaces = 0;  ///< interfaces seen before resolution
  fault::FaultStats fault_stats;   ///< injected damage, if any
  fault::ProbeStats probe_stats;   ///< retry/loss/giveup accounting
};

/// Runs the Mercator simulation over the ground truth.
RouterObservation run_mercator(const GroundTruth& truth,
                               const MercatorOptions& options = {});

}  // namespace geonet::synth
