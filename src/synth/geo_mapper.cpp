#include "synth/geo_mapper.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/distance.h"
#include "obs/metrics.h"

namespace geonet::synth {

CityIndex::CityIndex(std::vector<geo::GeoPoint> cities, double bucket_deg)
    : cities_(std::move(cities)), bucket_deg_(bucket_deg) {
  rows_ = static_cast<std::size_t>(std::ceil(180.0 / bucket_deg_));
  cols_ = static_cast<std::size_t>(std::ceil(360.0 / bucket_deg_));
  buckets_.resize(rows_ * cols_);
  for (std::uint32_t i = 0; i < cities_.size(); ++i) {
    buckets_[bucket_of(cities_[i])].push_back(i);
  }
}

std::size_t CityIndex::bucket_of(const geo::GeoPoint& p) const noexcept {
  const geo::GeoPoint q = geo::normalized(p);
  auto row = static_cast<std::size_t>((q.lat_deg + 90.0) / bucket_deg_);
  auto col = static_cast<std::size_t>((q.lon_deg + 180.0) / bucket_deg_);
  row = std::min(row, rows_ - 1);
  col = std::min(col, cols_ - 1);
  return row * cols_ + col;
}

std::optional<std::size_t> CityIndex::nearest(const geo::GeoPoint& p) const {
  if (cities_.empty()) return std::nullopt;

  const std::size_t home = bucket_of(p);
  const std::ptrdiff_t home_row = static_cast<std::ptrdiff_t>(home / cols_);
  const std::ptrdiff_t home_col = static_cast<std::ptrdiff_t>(home % cols_);

  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  bool found = false;

  // Expand square rings of buckets until no unvisited ring can possibly
  // beat the best hit. The per-ring distance bound must use the
  // *compressed* longitude scale at this latitude, or a hit found early
  // can mask a closer city a few rings further out.
  const double lat_for_lon = std::min(88.0, std::fabs(p.lat_deg) + bucket_deg_);
  const double miles_per_ring =
      bucket_deg_ * std::min(geo::miles_per_lat_degree(),
                             geo::miles_per_lon_degree(lat_for_lon));
  const auto max_ring = static_cast<std::ptrdiff_t>(std::max(rows_, cols_));
  for (std::ptrdiff_t ring = 0; ring <= max_ring; ++ring) {
    if (found &&
        static_cast<double>(ring - 1) * miles_per_ring > best_dist) {
      break;
    }
    bool ring_in_range = false;
    for (std::ptrdiff_t dr = -ring; dr <= ring; ++dr) {
      const std::ptrdiff_t row = home_row + dr;
      if (row < 0 || row >= static_cast<std::ptrdiff_t>(rows_)) continue;
      for (std::ptrdiff_t dc = -ring; dc <= ring; ++dc) {
        if (std::max(std::abs(dr), std::abs(dc)) != ring) continue;
        // Longitude wraps around the globe.
        std::ptrdiff_t col = (home_col + dc) % static_cast<std::ptrdiff_t>(cols_);
        if (col < 0) col += static_cast<std::ptrdiff_t>(cols_);
        ring_in_range = true;
        for (const std::uint32_t idx :
             buckets_[static_cast<std::size_t>(row) * cols_ +
                      static_cast<std::size_t>(col)]) {
          const double d = geo::great_circle_miles(p, cities_[idx]);
          if (d < best_dist) {
            best_dist = d;
            best = idx;
            found = true;
          }
        }
      }
    }
    if (!ring_in_range && ring > 0 && !found) break;
  }
  if (!found) return std::nullopt;
  return best;
}

MapperProfile GeoMapper::ixmapper_profile() {
  // Failure rates follow the paper's Section III.B: ~1-1.5% of addresses
  // could not be located by IxMapper.
  return {.name = "IxMapper",
          .failure_rate = 0.013,
          .hq_error_rate = 0.02,
          .precise_rate = 0.0,
          .precise_quantum_deg = 0.05};
}

MapperProfile GeoMapper::edgescape_profile() {
  // EdgeScape missed only 0.3-0.6% and supplements hostname parsing with
  // ISP-supplied data, modelled as a chance of precise answers.
  return {.name = "EdgeScape",
          .failure_rate = 0.005,
          .hq_error_rate = 0.015,
          .precise_rate = 0.35,
          .precise_quantum_deg = 0.05};
}

GeoMapper::GeoMapper(MapperProfile profile, std::vector<geo::GeoPoint> city_db,
                     std::uint64_t seed)
    : profile_(std::move(profile)), index_(std::move(city_db)), seed_(seed) {}

std::optional<geo::GeoPoint> GeoMapper::map(
    net::Ipv4Addr addr, const geo::GeoPoint& true_location,
    const geo::GeoPoint& as_home) const {
  // Registry handles resolve once; per-lookup cost is one relaxed
  // fetch_add, cheap enough for this per-interface path.
  static obs::Counter& lookups =
      obs::MetricsRegistry::global().counter("mapper.lookups");
  static obs::Counter& unmapped =
      obs::MetricsRegistry::global().counter("mapper.unmapped");
  lookups.add();
  if (net::is_private(addr)) {
    unmapped.add();
    return std::nullopt;
  }

  // Derive the per-address decision stream deterministically: the same
  // address queried twice gives the same answer.
  std::uint64_t h = seed_ ^ (0x9e3779b97f4a7c15ULL * (addr.value + 1));
  stats::Rng rng(stats::splitmix64(h));

  if (rng.bernoulli(profile_.failure_rate)) {
    unmapped.add();
    return std::nullopt;
  }
  if (rng.bernoulli(profile_.hq_error_rate)) {
    // whois fallback: the organisation's registered headquarters.
    if (const auto city = index_.nearest(as_home)) {
      return index_.cities()[*city];
    }
    return as_home;
  }
  // ISP-supplied precision is a property of the *place*, not the address:
  // key the decision on the location cell so co-located interfaces (e.g.
  // on one router) always answer consistently and alias-vote ties stay
  // rare, as the paper observed.
  std::uint64_t place = seed_ ^ geo::quantized_key(true_location, 0.05);
  stats::Rng place_rng(stats::splitmix64(place));
  if (place_rng.bernoulli(profile_.precise_rate)) {
    const double q = profile_.precise_quantum_deg;
    return geo::GeoPoint{std::round(true_location.lat_deg / q) * q,
                         std::round(true_location.lon_deg / q) * q};
  }
  if (const auto city = index_.nearest(true_location)) {
    return index_.cities()[*city];
  }
  unmapped.add();
  return std::nullopt;
}

}  // namespace geonet::synth
