#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "fault/fault_plan.h"
#include "fault/geo_faults.h"
#include "synth/geo_mapper.h"

namespace geonet::synth {

/// Decorates any Mapper with a GeoCorruptFault: most answers pass
/// through untouched; a seed-deterministic minority come back flipped,
/// swapped, or garbled, exactly like stale/broken rows in a real
/// geolocation database. Unmappable addresses stay unmappable — a broken
/// row corrupts an answer, it does not invent one.
///
/// Keeps the inner mapper's name so processed-dataset labels ("Skitter+
/// IxMapper") stay stable regardless of injected damage.
class FaultyMapper final : public Mapper {
 public:
  FaultyMapper(const Mapper& inner, const fault::GeoCorruptFault& fault,
               std::uint64_t seed) noexcept
      : inner_(inner), corruptor_(fault, seed) {}

  [[nodiscard]] std::optional<geo::GeoPoint> map(
      net::Ipv4Addr addr, const geo::GeoPoint& true_location,
      const geo::GeoPoint& as_home) const override;

  [[nodiscard]] std::string name() const override { return inner_.name(); }

  /// Damage dealt so far (geo_corrupted / geo_garbled counts).
  [[nodiscard]] const fault::FaultStats& stats() const noexcept {
    return stats_;
  }

 private:
  const Mapper& inner_;
  fault::GeoCorruptor corruptor_;
  mutable fault::FaultStats stats_;
};

}  // namespace geonet::synth
