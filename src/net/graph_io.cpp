#include "net/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geonet::net {

bool write_graph(std::ostream& out, const AnnotatedGraph& graph,
                 std::span<const double> link_latency_ms) {
  const obs::Span span("io/write_graph");
  obs::MetricsRegistry::global().counter("io.nodes_written")
      .add(graph.node_count());
  obs::MetricsRegistry::global().counter("io.links_written")
      .add(graph.edge_count());
  out << "# geonet annotated topology\n";
  out << "kind " << to_string(graph.kind()) << '\n';
  if (!graph.name().empty()) out << "name " << graph.name() << '\n';
  out << "# node <id> <lat> <lon> <asn> <addr>\n";
  char buf[160];
  for (std::uint32_t id = 0; id < graph.node_count(); ++id) {
    const GraphNode& node = graph.node(id);
    std::snprintf(buf, sizeof(buf), "node %u %.6f %.6f %u %s\n", id,
                  node.location.lat_deg, node.location.lon_deg, node.asn,
                  to_string(node.addr).c_str());
    out << buf;
  }
  out << "# link <a> <b> [latency_ms]\n";
  const bool with_latency = link_latency_ms.size() == graph.edge_count();
  for (std::size_t e = 0; e < graph.edges().size(); ++e) {
    const GraphEdge& edge = graph.edges()[e];
    if (with_latency) {
      std::snprintf(buf, sizeof(buf), "link %u %u %.4f\n", edge.a, edge.b,
                    link_latency_ms[e]);
    } else {
      std::snprintf(buf, sizeof(buf), "link %u %u\n", edge.a, edge.b);
    }
    out << buf;
  }
  return static_cast<bool>(out);
}

bool write_graph_file(const std::string& path, const AnnotatedGraph& graph,
                      std::span<const double> link_latency_ms) {
  std::ofstream out(path);
  return out && write_graph(out, graph, link_latency_ms);
}

namespace {

bool fail(std::string* error, std::size_t line_no, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + what;
  }
  return false;
}

}  // namespace

std::optional<AnnotatedGraph> read_graph(std::istream& in,
                                         std::string* error) {
  const obs::Span span("io/read_graph");
  NodeKind kind = NodeKind::kRouter;
  std::string name;

  struct PendingNode {
    std::uint64_t id;
    GraphNode node;
  };
  std::vector<PendingNode> nodes;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> links;

  std::string line;
  std::size_t line_no = 0;
  const auto parse_failed = [&](const std::string& what) {
    fail(error, line_no, what);
    return std::optional<AnnotatedGraph>{};
  };

  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line

    if (tag == "kind") {
      std::string value;
      fields >> value;
      if (value == "interface") {
        kind = NodeKind::kInterface;
      } else if (value == "router") {
        kind = NodeKind::kRouter;
      } else {
        return parse_failed("unknown kind '" + value + "'");
      }
    } else if (tag == "name") {
      std::getline(fields >> std::ws, name);
    } else if (tag == "node") {
      PendingNode pending;
      double lat = 0.0, lon = 0.0;
      std::uint32_t asn = 0;
      if (!(fields >> pending.id >> lat >> lon >> asn)) {
        return parse_failed("malformed node record");
      }
      if (!geo::is_valid({lat, lon})) {
        return parse_failed("invalid coordinates");
      }
      pending.node.location = {lat, lon};
      pending.node.asn = asn;
      std::string addr_text;
      if (fields >> addr_text) {
        const auto addr = parse_ipv4(addr_text);
        if (!addr) return parse_failed("bad address '" + addr_text + "'");
        pending.node.addr = *addr;
      }
      nodes.push_back(pending);
    } else if (tag == "link") {
      std::uint64_t a = 0, b = 0;
      if (!(fields >> a >> b)) {
        return parse_failed("malformed link record");
      }
      links.emplace_back(a, b);
    } else {
      return parse_failed("unknown record '" + tag + "'");
    }
  }

  AnnotatedGraph graph(kind, name);
  std::unordered_map<std::uint64_t, std::uint32_t> index;
  index.reserve(nodes.size());
  for (const PendingNode& pending : nodes) {
    if (!index.try_emplace(pending.id, graph.add_node(pending.node)).second) {
      fail(error, 0, "duplicate node id " + std::to_string(pending.id));
      return std::nullopt;
    }
  }
  for (const auto& [a, b] : links) {
    const auto ia = index.find(a);
    const auto ib = index.find(b);
    if (ia == index.end() || ib == index.end()) {
      fail(error, 0, "link references unknown node");
      return std::nullopt;
    }
    graph.add_edge(ia->second, ib->second);  // dedup/self-loop safe
  }
  obs::MetricsRegistry::global().counter("io.nodes_read")
      .add(graph.node_count());
  obs::MetricsRegistry::global().counter("io.links_read")
      .add(graph.edge_count());
  return graph;
}

std::optional<AnnotatedGraph> read_graph_file(const std::string& path,
                                              std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return read_graph(in, error);
}

}  // namespace geonet::net
