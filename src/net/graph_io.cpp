#include "net/graph_io.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "geo/spatial_index_store.h"
#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/fs.h"
#include "store/snapshot.h"

namespace geonet::net {

namespace {

bool write_failed(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool write_graph(std::ostream& out, const AnnotatedGraph& graph,
                 std::span<const double> link_latency_ms, std::string* error) {
  const obs::Span span("io/write_graph");
  obs::MetricsRegistry::global().counter("io.nodes_written")
      .add(graph.node_count());
  obs::MetricsRegistry::global().counter("io.links_written")
      .add(graph.edge_count());
  out << "# geonet annotated topology\n";
  out << "kind " << to_string(graph.kind()) << '\n';
  if (!graph.name().empty()) out << "name " << graph.name() << '\n';
  if (!out) return write_failed(error, "write failed at header");
  out << "# node <id> <lat> <lon> <asn> <addr>\n";
  char buf[160];
  for (std::uint32_t id = 0; id < graph.node_count(); ++id) {
    const GraphNode& node = graph.node(id);
    std::snprintf(buf, sizeof(buf), "node %u %.6f %.6f %u %s\n", id,
                  node.location.lat_deg, node.location.lon_deg, node.asn,
                  to_string(node.addr).c_str());
    out << buf;
    // Check per record: a full disk or closed pipe is reported with the
    // record it hit, not discovered after streaming the whole graph.
    if (!out) {
      return write_failed(error, "write failed at node record " +
                                     std::to_string(id) + " of " +
                                     std::to_string(graph.node_count()));
    }
  }
  out << "# link <a> <b> [latency_ms]\n";
  const bool with_latency = link_latency_ms.size() == graph.edge_count();
  for (std::size_t e = 0; e < graph.edges().size(); ++e) {
    const GraphEdge& edge = graph.edges()[e];
    if (with_latency) {
      std::snprintf(buf, sizeof(buf), "link %u %u %.4f\n", edge.a, edge.b,
                    link_latency_ms[e]);
    } else {
      std::snprintf(buf, sizeof(buf), "link %u %u\n", edge.a, edge.b);
    }
    out << buf;
    if (!out) {
      return write_failed(error, "write failed at link record " +
                                     std::to_string(e) + " of " +
                                     std::to_string(graph.edge_count()));
    }
  }
  if (!static_cast<bool>(out)) return write_failed(error, "write failed");
  return true;
}

bool write_graph_file(const std::string& path, const AnnotatedGraph& graph,
                      std::span<const double> link_latency_ms,
                      std::string* error) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".geos") == 0) {
    return write_snapshot_file(path, graph, link_latency_ms, error);
  }
  return store::atomic_write(
      path,
      [&](std::ostream& out) {
        return write_graph(out, graph, link_latency_ms, error);
      },
      error != nullptr && error->empty() ? error : nullptr);
}

// --- Binary snapshots ------------------------------------------------

void encode_graph(store::ByteWriter& out, const AnnotatedGraph& graph) {
  out.u8(graph.kind() == NodeKind::kInterface ? 0 : 1);
  out.str(graph.name());
  out.u64(graph.node_count());
  for (const GraphNode& node : graph.nodes()) {
    out.u32(node.addr.value);
    out.f64(node.location.lat_deg);
    out.f64(node.location.lon_deg);
    out.u32(node.asn);
  }
  out.u64(graph.edge_count());
  for (const GraphEdge& edge : graph.edges()) {
    out.u32(edge.a);
    out.u32(edge.b);
  }
}

err::Result<AnnotatedGraph> decode_graph(store::ByteReader& in) {
  const std::uint8_t kind_tag = in.u8();
  if (kind_tag > 1) {
    return err::Status::data_loss("graph snapshot: bad node kind");
  }
  const NodeKind kind =
      kind_tag == 0 ? NodeKind::kInterface : NodeKind::kRouter;
  AnnotatedGraph graph(kind, in.str());

  const std::uint64_t node_count = in.u64();
  // Each node record is 24 bytes: a claimed count larger than the
  // remaining input is corruption, caught before any allocation.
  if (node_count > in.remaining() / 24) {
    return err::Status::data_loss("graph snapshot: node count exceeds input");
  }
  for (std::uint64_t i = 0; i < node_count && in.ok(); ++i) {
    GraphNode node;
    node.addr.value = in.u32();
    node.location.lat_deg = in.f64();
    node.location.lon_deg = in.f64();
    node.asn = in.u32();
    graph.add_node(node);
  }
  const std::uint64_t edge_count = in.u64();
  if (edge_count > in.remaining() / 8) {
    return err::Status::data_loss("graph snapshot: edge count exceeds input");
  }
  for (std::uint64_t i = 0; i < edge_count && in.ok(); ++i) {
    const std::uint32_t a = in.u32();
    const std::uint32_t b = in.u32();
    if (!in.ok()) break;
    if (!graph.add_edge(a, b)) {
      return err::Status::data_loss(
          "graph snapshot: invalid edge " + std::to_string(a) + "-" +
          std::to_string(b) + " (out of range, self-loop or duplicate)");
    }
  }
  if (!in.ok()) {
    return err::Status::data_loss("graph snapshot: truncated graph body");
  }
  return graph;
}

std::vector<std::byte> encode_graph_snapshot(
    const AnnotatedGraph& graph, std::span<const double> link_latency_ms) {
  store::SnapshotWriter writer;
  store::ByteWriter body;
  encode_graph(body, graph);
  writer.add_section(kSectionGraph, body.take());
  if (link_latency_ms.size() == graph.edge_count() &&
      !link_latency_ms.empty()) {
    store::ByteWriter latency;
    latency.u64(link_latency_ms.size());
    for (const double v : link_latency_ms) latency.f64(v);
    writer.add_section(kSectionLatency, latency.take());
  }
  // The spatial index over the node locations rides along so warm readers
  // skip the O(n log n) build; old readers skip the unknown section.
  {
    store::ByteWriter sidx;
    geo::encode_spatial_index(sidx,
                              geo::SpatialIndex::build(graph.locations()));
    writer.add_section(geo::kSectionSpatialIndex, sidx.take());
  }
  return writer.finish();
}

err::Result<GraphSnapshot> decode_graph_snapshot(
    std::span<const std::byte> bytes) {
  auto parsed = store::SnapshotView::parse(bytes);
  if (!parsed.is_ok()) return parsed.status();
  const store::SnapshotView& view = parsed.value();
  const auto* graph_section = view.find(kSectionGraph);
  if (graph_section == nullptr) {
    return err::Status::data_loss("graph snapshot: no 'GRPH' section");
  }
  store::ByteReader body(graph_section->payload);
  auto graph = decode_graph(body);
  if (!graph.is_ok()) return graph.status();

  GraphSnapshot snapshot;
  snapshot.graph = std::move(graph).value();
  if (const auto* latency_section = view.find(kSectionLatency)) {
    store::ByteReader latency(latency_section->payload);
    const std::uint64_t count = latency.u64();
    if (count != snapshot.graph.edge_count() ||
        count > latency.remaining() / 8) {
      return err::Status::data_loss(
          "graph snapshot: latency column does not match edge count");
    }
    snapshot.link_latency_ms.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      snapshot.link_latency_ms.push_back(latency.f64());
    }
    if (!latency.ok()) {
      return err::Status::data_loss("graph snapshot: truncated latency column");
    }
  }
  // The index is an accelerator, not data: a missing, undecodable, or
  // mismatched 'SIDX' section leaves spatial_index empty (readers rebuild)
  // rather than failing the graph read. Bit-equality against the graph's
  // own locations guards against a section pasted in from another file.
  if (const auto* sidx_section = view.find(geo::kSectionSpatialIndex)) {
    store::ByteReader sidx(sidx_section->payload);
    auto decoded = geo::decode_spatial_index(sidx);
    if (decoded.is_ok()) {
      const auto bits = [](double v) {
        return std::bit_cast<std::uint64_t>(v);
      };
      const auto& locations = snapshot.graph.locations();
      const auto& points = decoded.value().points();
      bool matches = points.size() == locations.size();
      for (std::size_t i = 0; matches && i < points.size(); ++i) {
        matches = bits(points[i].lat_deg) == bits(locations[i].lat_deg) &&
                  bits(points[i].lon_deg) == bits(locations[i].lon_deg);
      }
      if (matches) snapshot.spatial_index = std::move(decoded).value();
    }
  }
  return snapshot;
}

bool write_snapshot_file(const std::string& path, const AnnotatedGraph& graph,
                         std::span<const double> link_latency_ms,
                         std::string* error) {
  const obs::Span span("io/write_snapshot");
  const std::vector<std::byte> bytes =
      encode_graph_snapshot(graph, link_latency_ms);
  obs::MetricsRegistry::global().counter("io.snapshot_bytes_written")
      .add(bytes.size());
  return store::atomic_write_bytes(path, bytes, error);
}

store::Digest128 graph_digest(const AnnotatedGraph& graph) {
  store::ByteWriter body;
  encode_graph(body, graph);
  store::Fingerprint fp;
  fp.add_bytes("graph", body.buffer());
  return fp.digest();
}

bool is_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {0, 0, 0, 0};
  in.read(magic, 4);
  return in.gcount() == 4 && std::memcmp(magic, "GEOS", 4) == 0;
}

namespace {

struct PendingNode {
  std::uint64_t id = 0;
  GraphNode node;
  std::size_t line_no = 0;
};

struct PendingLink {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::size_t line_no = 0;
};

}  // namespace

GraphReadResult read_graph_ex(std::istream& in,
                              const GraphReadOptions& options) {
  const obs::Span span("io/read_graph");
  GraphReadResult result;
  NodeKind kind = NodeKind::kRouter;
  std::string name;

  std::vector<PendingNode> nodes;
  std::vector<PendingLink> links;

  // Quarantines one malformed record. Returns true when the read may
  // continue (lenient mode, cap not yet hit); false fails the read with
  // the appropriate status.
  bool failed = false;
  const auto bad_record = [&](std::size_t line_no, std::string reason,
                              std::string text) {
    result.quarantined.push_back(
        {line_no, std::move(reason), std::move(text)});
    const QuarantinedRecord& record = result.quarantined.back();
    if (!options.lenient) {
      result.status = err::Status::data_loss(
          "line " + std::to_string(record.line_no) + ": " + record.reason);
      failed = true;
      return false;
    }
    if (result.quarantined.size() > options.max_quarantined) {
      result.status = err::Status::resource_exhausted(
          "more than " + std::to_string(options.max_quarantined) +
          " malformed records; refusing input");
      failed = true;
      return false;
    }
    return true;
  };

  std::string line;
  std::size_t line_no = 0;
  while (!failed && std::getline(in, line)) {
    ++line_no;
    const std::string original = line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;  // blank line

    if (tag == "kind") {
      std::string value;
      fields >> value;
      if (value == "interface") {
        kind = NodeKind::kInterface;
      } else if (value == "router") {
        kind = NodeKind::kRouter;
      } else {
        bad_record(line_no, "unknown kind '" + value + "'", original);
      }
    } else if (tag == "name") {
      std::getline(fields >> std::ws, name);
    } else if (tag == "node") {
      PendingNode pending;
      pending.line_no = line_no;
      double lat = 0.0, lon = 0.0;
      std::uint32_t asn = 0;
      if (!(fields >> pending.id >> lat >> lon >> asn)) {
        bad_record(line_no, "malformed node record", original);
        continue;
      }
      if (!geo::is_valid({lat, lon})) {
        bad_record(line_no, "invalid coordinates", original);
        continue;
      }
      pending.node.location = {lat, lon};
      pending.node.asn = asn;
      std::string addr_text;
      if (fields >> addr_text) {
        const auto addr = parse_ipv4(addr_text);
        if (!addr) {
          bad_record(line_no, "bad address '" + addr_text + "'", original);
          continue;
        }
        pending.node.addr = *addr;
      }
      nodes.push_back(pending);
    } else if (tag == "link") {
      PendingLink pending;
      pending.line_no = line_no;
      if (!(fields >> pending.a >> pending.b)) {
        bad_record(line_no, "malformed link record", original);
        continue;
      }
      links.push_back(pending);
    } else {
      bad_record(line_no, "unknown record '" + tag + "'", original);
    }
  }

  if (!failed) {
    AnnotatedGraph graph(kind, name);
    std::unordered_map<std::uint64_t, std::uint32_t> index;
    index.reserve(nodes.size());
    for (const PendingNode& pending : nodes) {
      if (index.contains(pending.id)) {
        if (!bad_record(pending.line_no,
                        "duplicate node id " + std::to_string(pending.id),
                        "node " + std::to_string(pending.id))) {
          break;
        }
        continue;
      }
      index.emplace(pending.id, graph.add_node(pending.node));
    }
    for (const PendingLink& pending : links) {
      if (failed) break;
      const auto ia = index.find(pending.a);
      const auto ib = index.find(pending.b);
      if (ia == index.end() || ib == index.end()) {
        if (!bad_record(pending.line_no, "link references unknown node",
                        "link " + std::to_string(pending.a) + " " +
                            std::to_string(pending.b))) {
          break;
        }
        continue;
      }
      graph.add_edge(ia->second, ib->second);  // dedup/self-loop safe
    }
    if (!failed) {
      obs::MetricsRegistry::global().counter("io.nodes_read")
          .add(graph.node_count());
      obs::MetricsRegistry::global().counter("io.links_read")
          .add(graph.edge_count());
      result.graph = std::move(graph);
      result.status = err::Status::ok();
    }
  }
  obs::MetricsRegistry::global().counter("io.records_quarantined")
      .add(result.quarantined.size());
  return result;
}

GraphReadResult read_graph_file_ex(const std::string& path,
                                   const GraphReadOptions& options) {
  std::ifstream in(path);
  if (!in) {
    GraphReadResult result;
    result.status = err::Status::not_found("cannot open " + path);
    return result;
  }
  if (is_snapshot_file(path)) {
    // Binary snapshot: checksummed sections, so lenient-mode quarantining
    // does not apply — damage fails the read with a precise status.
    GraphReadResult result;
    auto bytes = store::read_file_bytes(path);
    if (!bytes.is_ok()) {
      result.status = bytes.status();
      return result;
    }
    auto snapshot = decode_graph_snapshot(bytes.value());
    if (!snapshot.is_ok()) {
      result.status = snapshot.status();
      return result;
    }
    GraphSnapshot decoded = std::move(snapshot).value();
    result.graph = std::move(decoded.graph);
    result.spatial_index = std::move(decoded.spatial_index);
    result.status = err::Status::ok();
    return result;
  }
  return read_graph_ex(in, options);
}

std::optional<AnnotatedGraph> read_graph(std::istream& in,
                                         std::string* error) {
  GraphReadResult result = read_graph_ex(in, {});
  if (!result.ok() && error != nullptr) *error = result.status.message();
  return std::move(result.graph);
}

std::optional<AnnotatedGraph> read_graph_file(const std::string& path,
                                              std::string* error) {
  GraphReadResult result = read_graph_file_ex(path, {});
  if (!result.ok() && error != nullptr) *error = result.status.message();
  return std::move(result.graph);
}

}  // namespace geonet::net
