#include "net/prefix_trie.h"

namespace geonet::net {

namespace {

constexpr std::uint32_t bit_at(std::uint32_t value, int depth) noexcept {
  return (value >> (31 - depth)) & 1u;
}

}  // namespace

PrefixTrie::PrefixTrie() { nodes_.emplace_back(); }

void PrefixTrie::insert(const Prefix& prefix, std::uint32_t value) {
  const Prefix p = normalized(prefix);
  std::size_t node = 0;
  for (int depth = 0; depth < p.length; ++depth) {
    const std::uint32_t bit = bit_at(p.network.value, depth);
    if (nodes_[node].child[bit] < 0) {
      nodes_[node].child[bit] = static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  if (!nodes_[node].terminal) ++size_;
  nodes_[node].terminal = true;
  nodes_[node].value = value;
}

std::optional<std::uint32_t> PrefixTrie::longest_match(Ipv4Addr addr) const noexcept {
  const auto entry = longest_match_entry(addr);
  if (!entry) return std::nullopt;
  return entry->value;
}

std::optional<PrefixTrie::Match> PrefixTrie::longest_match_entry(
    Ipv4Addr addr) const noexcept {
  std::optional<Match> best;
  std::size_t node = 0;
  for (int depth = 0; depth <= 32; ++depth) {
    if (nodes_[node].terminal) {
      const std::uint32_t mask = prefix_mask(static_cast<std::uint8_t>(depth));
      best = Match{{Ipv4Addr{addr.value & mask}, static_cast<std::uint8_t>(depth)},
                   nodes_[node].value};
    }
    if (depth == 32) break;
    const std::uint32_t bit = bit_at(addr.value, depth);
    if (nodes_[node].child[bit] < 0) break;
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  return best;
}

std::optional<std::uint32_t> PrefixTrie::exact_match(const Prefix& prefix) const noexcept {
  const Prefix p = normalized(prefix);
  std::size_t node = 0;
  for (int depth = 0; depth < p.length; ++depth) {
    const std::uint32_t bit = bit_at(p.network.value, depth);
    if (nodes_[node].child[bit] < 0) return std::nullopt;
    node = static_cast<std::size_t>(nodes_[node].child[bit]);
  }
  if (!nodes_[node].terminal) return std::nullopt;
  return nodes_[node].value;
}

std::vector<PrefixTrie::Match> PrefixTrie::entries() const {
  std::vector<Match> out;
  out.reserve(size_);

  struct Frame {
    std::size_t node;
    std::uint32_t bits;
    std::uint8_t depth;
  };
  std::vector<Frame> stack = {{0, 0, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& n = nodes_[f.node];
    if (n.terminal) {
      out.push_back({{Ipv4Addr{f.bits}, f.depth}, n.value});
    }
    // Push child 1 first so child 0 (lower addresses) is visited first.
    for (int bit = 1; bit >= 0; --bit) {
      if (n.child[bit] >= 0) {
        const std::uint32_t child_bits =
            f.bits | (bit == 1 ? (1u << (31 - f.depth)) : 0u);
        stack.push_back({static_cast<std::size_t>(n.child[bit]), child_bits,
                         static_cast<std::uint8_t>(f.depth + 1)});
      }
    }
  }
  return out;
}

}  // namespace geonet::net
