#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/annotated_graph.h"
#include "net/topology.h"

namespace geonet::net {

constexpr std::uint32_t kNoParent = std::numeric_limits<std::uint32_t>::max();

/// Breadth-first shortest-path tree over the router graph of a Topology.
///
/// The measurement simulators use this as their forwarding model: probe
/// packets follow hop-count-shortest paths, which is the idealised
/// behaviour traceroute observes.
struct BfsTree {
  RouterId source = 0;
  std::vector<std::uint32_t> parent;       ///< kNoParent for source/unreached
  std::vector<InterfaceId> entry_if;       ///< interface used to ENTER each router
  std::vector<std::uint32_t> hop_count;    ///< kNoParent if unreachable
};

/// Builds the BFS tree rooted at source. Tie-breaking is deterministic:
/// neighbours are visited in adjacency order.
BfsTree bfs_tree(const Topology& topology, RouterId source);

/// Extracts the router path source -> destination from a BFS tree;
/// empty if the destination is unreachable.
std::vector<RouterId> extract_path(const BfsTree& tree, RouterId destination);

/// Connected components over an AnnotatedGraph; returns component id per
/// node and writes the number of components through count (if non-null).
std::vector<std::uint32_t> connected_components(const AnnotatedGraph& graph,
                                                std::size_t* count = nullptr);

/// Number of nodes in the largest connected component.
std::size_t giant_component_size(const AnnotatedGraph& graph);

/// Connected components over the router graph of a Topology.
std::vector<std::uint32_t> router_components(const Topology& topology,
                                             std::size_t* count = nullptr);

/// Mean shortest-path hop count estimated from `samples` random source
/// BFS runs over the graph's giant component (exact if samples >= nodes).
double estimated_mean_hops(const AnnotatedGraph& graph, std::size_t samples,
                           std::uint64_t seed);

}  // namespace geonet::net
