#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace geonet::net {

/// Longest-prefix-match table from CIDR prefixes to 32-bit values
/// (AS numbers, in this library's use).
///
/// Section III.C of the paper labels every node with its parent AS by
/// finding the longest advertised BGP prefix matching the node's address
/// and recording the originating AS. This binary trie implements that
/// lookup in O(32) per query.
class PrefixTrie {
 public:
  PrefixTrie();

  /// Inserts or replaces the value for a prefix. The prefix is normalized
  /// first, mirroring how a BGP RIB keys routes.
  void insert(const Prefix& prefix, std::uint32_t value);

  /// Value of the longest matching prefix, or nullopt if nothing matches.
  [[nodiscard]] std::optional<std::uint32_t> longest_match(Ipv4Addr addr) const noexcept;

  /// The matching prefix itself alongside its value.
  struct Match {
    Prefix prefix;
    std::uint32_t value = 0;
  };
  [[nodiscard]] std::optional<Match> longest_match_entry(Ipv4Addr addr) const noexcept;

  /// Exact-match lookup (no LPM walk).
  [[nodiscard]] std::optional<std::uint32_t> exact_match(const Prefix& prefix) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// All stored entries (order: trie preorder, i.e. by prefix bits).
  [[nodiscard]] std::vector<Match> entries() const;

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    bool terminal = false;
    std::uint32_t value = 0;
  };

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace geonet::net
