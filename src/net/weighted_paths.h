#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "net/annotated_graph.h"

namespace geonet::net {

/// Weighted shortest paths over an AnnotatedGraph — the consumer-side
/// payoff of latency-annotated topologies (Section VII of the paper:
/// topologies "must be labeled with link latencies" to be useful in
/// simulation). Weights are arbitrary non-negative per-edge costs,
/// typically propagation latencies in milliseconds.
class WeightedGraph {
 public:
  /// `edge_weights` parallels graph.edges(); both are referenced, not
  /// copied, and must outlive this object.
  WeightedGraph(const AnnotatedGraph& graph,
                std::span<const double> edge_weights);

  static constexpr double kUnreachable =
      std::numeric_limits<double>::infinity();

  struct ShortestPaths {
    std::vector<double> distance;        ///< kUnreachable if not reached
    std::vector<std::uint32_t> parent;   ///< UINT32_MAX for source/unreached
  };

  /// Dijkstra from a source node.
  [[nodiscard]] ShortestPaths dijkstra(std::uint32_t source) const;

  /// Node sequence source..target from a ShortestPaths result; empty when
  /// unreachable.
  static std::vector<std::uint32_t> extract_path(const ShortestPaths& paths,
                                                 std::uint32_t source,
                                                 std::uint32_t target);

  [[nodiscard]] const AnnotatedGraph& graph() const noexcept { return *graph_; }

 private:
  const AnnotatedGraph* graph_;
  std::span<const double> weights_;
  // CSR-style adjacency: neighbor + edge index per arc.
  std::vector<std::uint32_t> offsets_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> arcs_;
};

/// Latency stretch statistics: over sampled reachable node pairs, the
/// ratio of shortest-path latency (over the annotated links) to the
/// direct great-circle propagation latency. Values near 1 mean the
/// topology routes close to the geographic optimum; large values flag
/// detour-heavy designs.
struct StretchStats {
  std::size_t pairs = 0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
};

StretchStats latency_stretch(const AnnotatedGraph& graph,
                             std::span<const double> latency_ms,
                             std::size_t sample_sources, std::uint64_t seed);

}  // namespace geonet::net
