#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "net/annotated_graph.h"

namespace geonet::net {

/// Plain-text serialization of annotated topologies — the interchange
/// format between the generator tools and the analysis pipeline, so that
/// downstream users can analyse graphs produced elsewhere (or feed
/// geonet-generated graphs into their own simulators).
///
/// Format (one record per line, '#' comments ignored):
///   kind interface|router
///   name <free text>
///   node <id> <lat> <lon> <asn> [addr]
///   link <a> <b> [extra columns ignored]
///
/// Node ids may be arbitrary distinct integers; they are remapped to
/// dense indices on read. Links referencing unknown ids are an error.

/// Writes the graph; when `link_latency_ms` is non-empty it must parallel
/// graph.edges() and is emitted as an extra column. Returns false on I/O
/// failure.
bool write_graph(std::ostream& out, const AnnotatedGraph& graph,
                 std::span<const double> link_latency_ms = {});

bool write_graph_file(const std::string& path, const AnnotatedGraph& graph,
                      std::span<const double> link_latency_ms = {});

/// Reads a graph; on failure returns nullopt and, when `error` is
/// non-null, stores a one-line diagnostic including the line number.
std::optional<AnnotatedGraph> read_graph(std::istream& in,
                                         std::string* error = nullptr);

std::optional<AnnotatedGraph> read_graph_file(const std::string& path,
                                              std::string* error = nullptr);

}  // namespace geonet::net
