#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "err/status.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"
#include "store/bytes.h"
#include "store/fingerprint.h"
#include "store/snapshot.h"

namespace geonet::net {

/// Plain-text serialization of annotated topologies — the interchange
/// format between the generator tools and the analysis pipeline, so that
/// downstream users can analyse graphs produced elsewhere (or feed
/// geonet-generated graphs into their own simulators).
///
/// Format (one record per line, '#' comments ignored):
///   kind interface|router
///   name <free text>
///   node <id> <lat> <lon> <asn> [addr]
///   link <a> <b> [extra columns ignored]
///
/// Node ids may be arbitrary distinct integers; they are remapped to
/// dense indices on read. In strict mode (the default) any malformed
/// record fails the whole read; lenient mode quarantines bad records
/// (with line number and diagnostic) and keeps the rest.

/// Writes the graph; when `link_latency_ms` is non-empty it must parallel
/// graph.edges() and is emitted as an extra column. Returns false on I/O
/// failure; the stream state is checked after every record, and `error`
/// (when non-null) then names the record that failed.
bool write_graph(std::ostream& out, const AnnotatedGraph& graph,
                 std::span<const double> link_latency_ms = {},
                 std::string* error = nullptr);

/// File write is atomic (temp + rename, see store::atomic_write): an
/// interrupted run never leaves a truncated graph file. A path ending in
/// ".geos" is written as a binary snapshot instead of text.
bool write_graph_file(const std::string& path, const AnnotatedGraph& graph,
                      std::span<const double> link_latency_ms = {},
                      std::string* error = nullptr);

// --- Binary snapshots ------------------------------------------------
//
// The "GEOS" snapshot round-trip path (store::SnapshotWriter/View, see
// docs/storage.md): graphs persist as checksummed binary sections and
// load without re-parsing text — the format the artifact cache stores
// all topology artifacts in. read_graph_file_ex() sniffs the magic, so
// every CLI entry point accepts either representation.

/// Graph snapshot section types (the spatial-index section is
/// geo::kSectionSpatialIndex, 'SIDX').
inline constexpr std::uint32_t kSectionGraph =
    store::fourcc('G', 'R', 'P', 'H');
inline constexpr std::uint32_t kSectionLatency =
    store::fourcc('L', 'A', 'T', 'S');

/// Serializes the graph body (kind, name, nodes, edges) into `out` — the
/// payload of a 'GRPH' snapshot section. Byte-exact: doubles round-trip
/// bit for bit.
void encode_graph(store::ByteWriter& out, const AnnotatedGraph& graph);

/// Decodes one graph body. kDataLoss on malformed input (never a crash
/// or over-read; edge/self-loop invariants re-validated on insert).
err::Result<AnnotatedGraph> decode_graph(store::ByteReader& in);

/// A decoded snapshot: the graph plus the optional latency column and,
/// when the writer included one, the prebuilt spatial index over the
/// graph's node locations (the warm-index path — run_study and `geonet
/// serve`-style consumers skip the O(n log n) build).
struct GraphSnapshot {
  AnnotatedGraph graph{NodeKind::kRouter};
  std::vector<double> link_latency_ms;  ///< empty or parallel to edges()
  /// Set iff a 'SIDX' section decoded cleanly AND matches the graph's
  /// locations bit for bit; anything else leaves it empty (readers then
  /// rebuild — never a wrong index, never a failed graph read).
  std::optional<geo::SpatialIndex> spatial_index;
};

/// Renders a complete snapshot byte stream ('GRPH' + optional 'LATS' +
/// 'SIDX' sections, GEOS header with build provenance). The spatial index
/// of the node locations is always included so warm readers skip the
/// build; readers that predate SIDX skip the section (forward
/// compatibility). graph_digest() covers the 'GRPH' body only, so cache
/// keys are unaffected.
std::vector<std::byte> encode_graph_snapshot(
    const AnnotatedGraph& graph, std::span<const double> link_latency_ms = {});

/// Parses and validates snapshot bytes. Unknown sections are skipped
/// (forward compatibility); kDataLoss / kInvalidArgument on damage or a
/// format-version mismatch.
err::Result<GraphSnapshot> decode_graph_snapshot(
    std::span<const std::byte> bytes);

/// Writes a snapshot file atomically.
bool write_snapshot_file(const std::string& path, const AnnotatedGraph& graph,
                         std::span<const double> link_latency_ms = {},
                         std::string* error = nullptr);

/// 128-bit content digest over the graph body — the dataset identity the
/// study-phase cache keys on (see core::run_study).
store::Digest128 graph_digest(const AnnotatedGraph& graph);

/// True when the file begins with the GEOS snapshot magic.
bool is_snapshot_file(const std::string& path);

struct GraphReadOptions {
  /// Quarantine malformed records instead of failing the read.
  bool lenient = false;
  /// Lenient-mode damage cap: exceeding it fails the read with
  /// kResourceExhausted (an input this broken is the wrong file, not a
  /// file with a few bad rows).
  std::size_t max_quarantined = 1024;
};

/// One malformed record set aside by a lenient read.
struct QuarantinedRecord {
  std::size_t line_no = 0;  ///< 1-based line the record came from
  std::string reason;       ///< diagnostic, e.g. "malformed node record"
  std::string text;         ///< the offending line (or record echo)
};

/// Outcome of a graph read. `graph` is set on success — in lenient mode
/// possibly alongside a non-empty quarantine list; on failure `status`
/// explains (kDataLoss for malformed input, kNotFound for missing files,
/// kResourceExhausted past the quarantine cap).
struct GraphReadResult {
  std::optional<AnnotatedGraph> graph;
  std::vector<QuarantinedRecord> quarantined;
  err::Status status;
  /// From the snapshot's 'SIDX' section when reading a .geos file that
  /// carries a valid one (see GraphSnapshot::spatial_index).
  std::optional<geo::SpatialIndex> spatial_index;

  [[nodiscard]] bool ok() const noexcept { return graph.has_value(); }
};

GraphReadResult read_graph_ex(std::istream& in,
                              const GraphReadOptions& options = {});

GraphReadResult read_graph_file_ex(const std::string& path,
                                   const GraphReadOptions& options = {});

/// Strict-mode convenience wrappers; on failure returns nullopt and, when
/// `error` is non-null, stores a one-line diagnostic including the line
/// number.
std::optional<AnnotatedGraph> read_graph(std::istream& in,
                                         std::string* error = nullptr);

std::optional<AnnotatedGraph> read_graph_file(const std::string& path,
                                              std::string* error = nullptr);

}  // namespace geonet::net
