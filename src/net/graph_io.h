#pragma once

#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "err/status.h"
#include "net/annotated_graph.h"

namespace geonet::net {

/// Plain-text serialization of annotated topologies — the interchange
/// format between the generator tools and the analysis pipeline, so that
/// downstream users can analyse graphs produced elsewhere (or feed
/// geonet-generated graphs into their own simulators).
///
/// Format (one record per line, '#' comments ignored):
///   kind interface|router
///   name <free text>
///   node <id> <lat> <lon> <asn> [addr]
///   link <a> <b> [extra columns ignored]
///
/// Node ids may be arbitrary distinct integers; they are remapped to
/// dense indices on read. In strict mode (the default) any malformed
/// record fails the whole read; lenient mode quarantines bad records
/// (with line number and diagnostic) and keeps the rest.

/// Writes the graph; when `link_latency_ms` is non-empty it must parallel
/// graph.edges() and is emitted as an extra column. Returns false on I/O
/// failure; the stream state is checked after every record, and `error`
/// (when non-null) then names the record that failed.
bool write_graph(std::ostream& out, const AnnotatedGraph& graph,
                 std::span<const double> link_latency_ms = {},
                 std::string* error = nullptr);

bool write_graph_file(const std::string& path, const AnnotatedGraph& graph,
                      std::span<const double> link_latency_ms = {},
                      std::string* error = nullptr);

struct GraphReadOptions {
  /// Quarantine malformed records instead of failing the read.
  bool lenient = false;
  /// Lenient-mode damage cap: exceeding it fails the read with
  /// kResourceExhausted (an input this broken is the wrong file, not a
  /// file with a few bad rows).
  std::size_t max_quarantined = 1024;
};

/// One malformed record set aside by a lenient read.
struct QuarantinedRecord {
  std::size_t line_no = 0;  ///< 1-based line the record came from
  std::string reason;       ///< diagnostic, e.g. "malformed node record"
  std::string text;         ///< the offending line (or record echo)
};

/// Outcome of a graph read. `graph` is set on success — in lenient mode
/// possibly alongside a non-empty quarantine list; on failure `status`
/// explains (kDataLoss for malformed input, kNotFound for missing files,
/// kResourceExhausted past the quarantine cap).
struct GraphReadResult {
  std::optional<AnnotatedGraph> graph;
  std::vector<QuarantinedRecord> quarantined;
  err::Status status;

  [[nodiscard]] bool ok() const noexcept { return graph.has_value(); }
};

GraphReadResult read_graph_ex(std::istream& in,
                              const GraphReadOptions& options = {});

GraphReadResult read_graph_file_ex(const std::string& path,
                                   const GraphReadOptions& options = {});

/// Strict-mode convenience wrappers; on failure returns nullopt and, when
/// `error` is non-null, stores a one-line diagnostic including the line
/// number.
std::optional<AnnotatedGraph> read_graph(std::istream& in,
                                         std::string* error = nullptr);

std::optional<AnnotatedGraph> read_graph_file(const std::string& path,
                                              std::string* error = nullptr);

}  // namespace geonet::net
