#include "net/annotated_graph.h"

#include <algorithm>

namespace geonet::net {

const char* to_string(NodeKind kind) noexcept {
  return kind == NodeKind::kInterface ? "interface" : "router";
}

std::uint32_t AnnotatedGraph::add_node(const GraphNode& node) {
  const auto id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.push_back(node);
  return id;
}

std::uint64_t AnnotatedGraph::edge_key(std::uint32_t a, std::uint32_t b) noexcept {
  const auto lo = static_cast<std::uint64_t>(std::min(a, b));
  const auto hi = static_cast<std::uint64_t>(std::max(a, b));
  return (hi << 32) | lo;
}

bool AnnotatedGraph::add_edge(std::uint32_t a, std::uint32_t b) {
  if (a == b || a >= nodes_.size() || b >= nodes_.size()) return false;
  const auto [it, inserted] = edge_set_.insert(edge_key(a, b));
  (void)it;
  if (!inserted) return false;
  edges_.push_back({std::min(a, b), std::max(a, b)});
  return true;
}

bool AnnotatedGraph::has_edge(std::uint32_t a, std::uint32_t b) const noexcept {
  if (a == b || a >= nodes_.size() || b >= nodes_.size()) return false;
  return edge_set_.contains(edge_key(a, b));
}

std::vector<std::uint32_t> AnnotatedGraph::degrees() const {
  std::vector<std::uint32_t> deg(nodes_.size(), 0);
  for (const auto& e : edges_) {
    ++deg[e.a];
    ++deg[e.b];
  }
  return deg;
}

std::vector<geo::GeoPoint> AnnotatedGraph::locations() const {
  std::vector<geo::GeoPoint> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.location);
  return out;
}

}  // namespace geonet::net
