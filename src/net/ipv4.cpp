#include "net/ipv4.h"

#include <charconv>
#include <cstdio>

namespace geonet::net {

std::string to_string(Ipv4Addr addr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr.value >> 24) & 0xff,
                (addr.value >> 16) & 0xff, (addr.value >> 8) & 0xff,
                addr.value & 0xff);
  return buf;
}

std::optional<Ipv4Addr> parse_ipv4(std::string_view text) {
  std::uint32_t value = 0;
  const char* cursor = text.data();
  const char* end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (cursor >= end || *cursor != '.') return std::nullopt;
      ++cursor;
    }
    unsigned part = 0;
    const auto [next, ec] = std::from_chars(cursor, end, part);
    if (ec != std::errc{} || next == cursor || part > 255) return std::nullopt;
    // Reject leading zeros beyond a bare "0" (ambiguous octal forms).
    if (next - cursor > 1 && *cursor == '0') return std::nullopt;
    value = (value << 8) | part;
    cursor = next;
  }
  if (cursor != end) return std::nullopt;
  return Ipv4Addr{value};
}

bool is_private(Ipv4Addr addr) noexcept {
  const std::uint32_t v = addr.value;
  return (v & 0xff000000u) == 0x0a000000u ||   // 10.0.0.0/8
         (v & 0xfff00000u) == 0xac100000u ||   // 172.16.0.0/12
         (v & 0xffff0000u) == 0xc0a80000u ||   // 192.168.0.0/16
         (v & 0xff000000u) == 0x7f000000u;     // 127.0.0.0/8
}

std::uint32_t prefix_mask(std::uint8_t length) noexcept {
  if (length == 0) return 0;
  if (length >= 32) return 0xffffffffu;
  return ~((1u << (32 - length)) - 1u);
}

Prefix normalized(const Prefix& p) noexcept {
  Prefix out = p;
  if (out.length > 32) out.length = 32;
  out.network.value &= prefix_mask(out.length);
  return out;
}

bool contains(const Prefix& p, Ipv4Addr addr) noexcept {
  const std::uint32_t mask = prefix_mask(p.length);
  return (addr.value & mask) == (p.network.value & mask);
}

std::string to_string(const Prefix& p) {
  return to_string(p.network) + "/" + std::to_string(p.length);
}

std::optional<Prefix> parse_prefix(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = parse_ipv4(text.substr(0, slash));
  if (!addr) return std::nullopt;
  unsigned length = 0;
  const std::string_view len_text = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc{} || next != len_text.data() + len_text.size() ||
      length > 32) {
    return std::nullopt;
  }
  return normalized(Prefix{*addr, static_cast<std::uint8_t>(length)});
}

}  // namespace geonet::net
