#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geo/geo_point.h"
#include "net/ipv4.h"

namespace geonet::net {

using RouterId = std::uint32_t;
using InterfaceId = std::uint32_t;
using LinkId = std::uint32_t;

constexpr std::uint32_t kUnknownAs = 0;

/// A physical router in the ground-truth topology.
struct Router {
  geo::GeoPoint location;
  std::uint32_t asn = kUnknownAs;
  std::vector<InterfaceId> interfaces;
};

/// One interface (IP address) on a router. Point-to-point links contribute
/// one interface to each endpoint router, mirroring the real addressing
/// structure that makes interface-level maps (Skitter) differ from
/// router-level maps (Mercator).
struct Interface {
  Ipv4Addr addr;
  RouterId router = 0;
};

/// An undirected physical link between two interfaces on distinct routers.
struct Link {
  InterfaceId if_a = 0;
  InterfaceId if_b = 0;
};

/// Router adjacency record: the neighbour plus the interfaces carrying it.
struct Adjacency {
  RouterId neighbor = 0;
  InterfaceId local_if = 0;   ///< interface on this router
  InterfaceId remote_if = 0;  ///< interface on the neighbour
  LinkId link = 0;
};

/// Ground-truth router-level topology: routers with geographic locations
/// and AS labels, interfaces with addresses, and point-to-point links.
///
/// This is the "real Internet" that the measurement simulators probe; the
/// paper's datasets are *observations* of such an object, never the object
/// itself.
class Topology {
 public:
  RouterId add_router(const geo::GeoPoint& location,
                      std::uint32_t asn = kUnknownAs);

  /// Adds a standalone interface (e.g. a loopback) to a router.
  InterfaceId add_interface(RouterId router, Ipv4Addr addr);

  /// Connects two routers with a new link, minting one new interface on
  /// each endpoint with the given addresses. Returns the link id.
  /// Requires a != b.
  LinkId add_link(RouterId a, RouterId b, Ipv4Addr addr_a, Ipv4Addr addr_b);

  [[nodiscard]] std::size_t router_count() const noexcept { return routers_.size(); }
  [[nodiscard]] std::size_t interface_count() const noexcept { return interfaces_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept { return links_.size(); }

  [[nodiscard]] const Router& router(RouterId id) const noexcept { return routers_[id]; }
  [[nodiscard]] Router& router(RouterId id) noexcept { return routers_[id]; }
  [[nodiscard]] const Interface& interface(InterfaceId id) const noexcept {
    return interfaces_[id];
  }
  [[nodiscard]] const Link& link(LinkId id) const noexcept { return links_[id]; }

  [[nodiscard]] std::span<const Adjacency> neighbors(RouterId id) const noexcept {
    return adjacency_[id];
  }
  [[nodiscard]] std::size_t degree(RouterId id) const noexcept {
    return adjacency_[id].size();
  }

  [[nodiscard]] const std::vector<Router>& routers() const noexcept { return routers_; }
  [[nodiscard]] const std::vector<Interface>& interfaces() const noexcept {
    return interfaces_;
  }
  [[nodiscard]] const std::vector<Link>& links() const noexcept { return links_; }

  /// True iff routers a and b share at least one direct link.
  [[nodiscard]] bool are_connected(RouterId a, RouterId b) const noexcept;

 private:
  std::vector<Router> routers_;
  std::vector<Interface> interfaces_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace geonet::net
