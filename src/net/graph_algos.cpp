#include "net/graph_algos.h"

#include <algorithm>
#include <queue>

#include "stats/rng.h"

namespace geonet::net {

BfsTree bfs_tree(const Topology& topology, RouterId source) {
  const std::size_t n = topology.router_count();
  BfsTree tree;
  tree.source = source;
  tree.parent.assign(n, kNoParent);
  tree.entry_if.assign(n, 0);
  tree.hop_count.assign(n, kNoParent);

  std::queue<RouterId> frontier;
  tree.hop_count[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const RouterId u = frontier.front();
    frontier.pop();
    for (const Adjacency& adj : topology.neighbors(u)) {
      if (tree.hop_count[adj.neighbor] != kNoParent) continue;
      tree.hop_count[adj.neighbor] = tree.hop_count[u] + 1;
      tree.parent[adj.neighbor] = u;
      tree.entry_if[adj.neighbor] = adj.remote_if;
      frontier.push(adj.neighbor);
    }
  }
  return tree;
}

std::vector<RouterId> extract_path(const BfsTree& tree, RouterId destination) {
  std::vector<RouterId> path;
  if (destination >= tree.hop_count.size() ||
      tree.hop_count[destination] == kNoParent) {
    return path;
  }
  for (RouterId cursor = destination;;) {
    path.push_back(cursor);
    if (cursor == tree.source) break;
    cursor = tree.parent[cursor];
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

std::vector<std::vector<std::uint32_t>> build_adjacency(
    const AnnotatedGraph& graph) {
  std::vector<std::vector<std::uint32_t>> adj(graph.node_count());
  for (const auto& e : graph.edges()) {
    adj[e.a].push_back(e.b);
    adj[e.b].push_back(e.a);
  }
  return adj;
}

}  // namespace

std::vector<std::uint32_t> connected_components(const AnnotatedGraph& graph,
                                                std::size_t* count) {
  const auto adj = build_adjacency(graph);
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> component(n, kNoParent);
  std::uint32_t next_id = 0;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (component[start] != kNoParent) continue;
    component[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const std::uint32_t u = stack.back();
      stack.pop_back();
      for (const std::uint32_t v : adj[u]) {
        if (component[v] == kNoParent) {
          component[v] = next_id;
          stack.push_back(v);
        }
      }
    }
    ++next_id;
  }
  if (count != nullptr) *count = next_id;
  return component;
}

std::size_t giant_component_size(const AnnotatedGraph& graph) {
  std::size_t count = 0;
  const auto component = connected_components(graph, &count);
  if (count == 0) return 0;
  std::vector<std::size_t> sizes(count, 0);
  for (const std::uint32_t c : component) ++sizes[c];
  return *std::max_element(sizes.begin(), sizes.end());
}

std::vector<std::uint32_t> router_components(const Topology& topology,
                                             std::size_t* count) {
  const std::size_t n = topology.router_count();
  std::vector<std::uint32_t> component(n, kNoParent);
  std::uint32_t next_id = 0;
  std::vector<RouterId> stack;
  for (RouterId start = 0; start < n; ++start) {
    if (component[start] != kNoParent) continue;
    component[start] = next_id;
    stack.push_back(start);
    while (!stack.empty()) {
      const RouterId u = stack.back();
      stack.pop_back();
      for (const Adjacency& adj : topology.neighbors(u)) {
        if (component[adj.neighbor] == kNoParent) {
          component[adj.neighbor] = next_id;
          stack.push_back(adj.neighbor);
        }
      }
    }
    ++next_id;
  }
  if (count != nullptr) *count = next_id;
  return component;
}

double estimated_mean_hops(const AnnotatedGraph& graph, std::size_t samples,
                           std::uint64_t seed) {
  const std::size_t n = graph.node_count();
  if (n == 0) return 0.0;
  const auto adj = build_adjacency(graph);
  stats::Rng rng(seed);

  double total_hops = 0.0;
  std::size_t total_pairs = 0;
  std::vector<std::uint32_t> dist(n);
  std::queue<std::uint32_t> frontier;

  const std::size_t runs = std::min(samples, n);
  for (std::size_t s = 0; s < runs; ++s) {
    const auto source = static_cast<std::uint32_t>(
        samples >= n ? s : rng.uniform_index(n));
    std::fill(dist.begin(), dist.end(), kNoParent);
    dist[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      for (const std::uint32_t v : adj[u]) {
        if (dist[v] == kNoParent) {
          dist[v] = dist[u] + 1;
          total_hops += dist[v];
          ++total_pairs;
          frontier.push(v);
        }
      }
    }
  }
  return total_pairs == 0 ? 0.0 : total_hops / static_cast<double>(total_pairs);
}

}  // namespace geonet::net
