#include "net/weighted_paths.h"

#include <algorithm>
#include <queue>

#include "geo/distance.h"
#include "stats/rng.h"
#include "stats/summary.h"

namespace geonet::net {

WeightedGraph::WeightedGraph(const AnnotatedGraph& graph,
                             std::span<const double> edge_weights)
    : graph_(&graph), weights_(edge_weights) {
  const std::size_t n = graph.node_count();
  std::vector<std::uint32_t> degree(n, 0);
  for (const auto& e : graph.edges()) {
    ++degree[e.a];
    ++degree[e.b];
  }
  offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offsets_[i + 1] = offsets_[i] + degree[i];
  }
  arcs_.resize(offsets_[n]);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::uint32_t e = 0; e < graph.edges().size(); ++e) {
    const auto& edge = graph.edges()[e];
    arcs_[cursor[edge.a]++] = {edge.b, e};
    arcs_[cursor[edge.b]++] = {edge.a, e};
  }
}

WeightedGraph::ShortestPaths WeightedGraph::dijkstra(
    std::uint32_t source) const {
  const std::size_t n = graph_->node_count();
  ShortestPaths out;
  out.distance.assign(n, kUnreachable);
  out.parent.assign(n, UINT32_MAX);
  if (source >= n) return out;

  using Item = std::pair<double, std::uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
  out.distance[source] = 0.0;
  frontier.push({0.0, source});
  while (!frontier.empty()) {
    const auto [dist, u] = frontier.top();
    frontier.pop();
    if (dist > out.distance[u]) continue;  // stale entry
    for (std::uint32_t i = offsets_[u]; i < offsets_[u + 1]; ++i) {
      const auto [v, edge] = arcs_[i];
      const double w = edge < weights_.size() ? weights_[edge] : 1.0;
      const double candidate = dist + std::max(0.0, w);
      if (candidate < out.distance[v]) {
        out.distance[v] = candidate;
        out.parent[v] = u;
        frontier.push({candidate, v});
      }
    }
  }
  return out;
}

std::vector<std::uint32_t> WeightedGraph::extract_path(
    const ShortestPaths& paths, std::uint32_t source, std::uint32_t target) {
  std::vector<std::uint32_t> out;
  if (target >= paths.distance.size() ||
      paths.distance[target] == kUnreachable) {
    return out;
  }
  for (std::uint32_t cursor = target;;) {
    out.push_back(cursor);
    if (cursor == source) break;
    cursor = paths.parent[cursor];
    if (cursor == UINT32_MAX) return {};  // malformed inputs
  }
  std::reverse(out.begin(), out.end());
  return out;
}

StretchStats latency_stretch(const AnnotatedGraph& graph,
                             std::span<const double> latency_ms,
                             std::size_t sample_sources, std::uint64_t seed) {
  StretchStats stats;
  const std::size_t n = graph.node_count();
  if (n < 2) return stats;

  const WeightedGraph weighted(graph, latency_ms);
  stats::Rng rng(seed);
  std::vector<double> ratios;

  const std::size_t sources = std::min(sample_sources, n);
  for (std::size_t s = 0; s < sources; ++s) {
    const auto source = static_cast<std::uint32_t>(rng.uniform_index(n));
    const auto paths = weighted.dijkstra(source);
    // Sample a handful of reachable targets per source.
    for (int t = 0; t < 32; ++t) {
      const auto target = static_cast<std::uint32_t>(rng.uniform_index(n));
      if (target == source ||
          paths.distance[target] == WeightedGraph::kUnreachable) {
        continue;
      }
      const double direct_miles = geo::great_circle_miles(
          graph.node(source).location, graph.node(target).location);
      const double direct_ms = geo::fiber_latency_ms(direct_miles);
      if (direct_ms < 0.05) continue;  // co-located pair: ratio meaningless
      ratios.push_back(paths.distance[target] / direct_ms);
    }
  }

  stats.pairs = ratios.size();
  if (!ratios.empty()) {
    stats.mean = stats::mean(ratios);
    stats.median = stats::quantile(ratios, 0.5);
    stats.p95 = stats::quantile(ratios, 0.95);
  }
  return stats;
}

}  // namespace geonet::net
