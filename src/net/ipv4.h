#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace geonet::net {

/// An IPv4 address stored in host byte order.
struct Ipv4Addr {
  std::uint32_t value = 0;

  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;
};

/// Dotted-quad formatting, e.g. "192.0.2.1".
[[nodiscard]] std::string to_string(Ipv4Addr addr);

/// Parses dotted-quad text; rejects malformed input (extra octets, values
/// above 255, empty components, trailing junk).
[[nodiscard]] std::optional<Ipv4Addr> parse_ipv4(std::string_view text);

/// True for RFC 1918 private space plus loopback; the paper discards
/// private addresses originating from misconfigured routers before mapping.
[[nodiscard]] bool is_private(Ipv4Addr addr) noexcept;

/// A CIDR prefix. Invariant (after normalized()): host bits are zero.
struct Prefix {
  Ipv4Addr network;
  std::uint8_t length = 0;  ///< 0..32

  friend auto operator<=>(const Prefix&, const Prefix&) = default;
};

/// All-ones-style mask for the given prefix length.
[[nodiscard]] std::uint32_t prefix_mask(std::uint8_t length) noexcept;

/// Zeroes host bits so the Prefix invariant holds.
[[nodiscard]] Prefix normalized(const Prefix& p) noexcept;

/// True iff addr falls inside the prefix.
[[nodiscard]] bool contains(const Prefix& p, Ipv4Addr addr) noexcept;

/// "a.b.c.d/len" formatting.
[[nodiscard]] std::string to_string(const Prefix& p);

/// Parses "a.b.c.d/len"; rejects lengths above 32.
[[nodiscard]] std::optional<Prefix> parse_prefix(std::string_view text);

}  // namespace geonet::net
