#include "net/topology.h"

#include <cassert>

namespace geonet::net {

RouterId Topology::add_router(const geo::GeoPoint& location, std::uint32_t asn) {
  const auto id = static_cast<RouterId>(routers_.size());
  routers_.push_back({location, asn, {}});
  adjacency_.emplace_back();
  return id;
}

InterfaceId Topology::add_interface(RouterId router, Ipv4Addr addr) {
  assert(router < routers_.size());
  const auto id = static_cast<InterfaceId>(interfaces_.size());
  interfaces_.push_back({addr, router});
  routers_[router].interfaces.push_back(id);
  return id;
}

LinkId Topology::add_link(RouterId a, RouterId b, Ipv4Addr addr_a,
                          Ipv4Addr addr_b) {
  assert(a != b && a < routers_.size() && b < routers_.size());
  const InterfaceId if_a = add_interface(a, addr_a);
  const InterfaceId if_b = add_interface(b, addr_b);
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back({if_a, if_b});
  adjacency_[a].push_back({b, if_a, if_b, id});
  adjacency_[b].push_back({a, if_b, if_a, id});
  return id;
}

bool Topology::are_connected(RouterId a, RouterId b) const noexcept {
  const auto& smaller =
      adjacency_[a].size() <= adjacency_[b].size() ? adjacency_[a] : adjacency_[b];
  const RouterId target = adjacency_[a].size() <= adjacency_[b].size() ? b : a;
  for (const auto& adj : smaller) {
    if (adj.neighbor == target) return true;
  }
  return false;
}

}  // namespace geonet::net
