#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "geo/geo_point.h"
#include "net/ipv4.h"

namespace geonet::net {

/// Whether graph nodes are router interfaces (Skitter-style observation)
/// or disambiguated routers (Mercator-style). The paper keeps the two
/// terms strictly distinct; so do we.
enum class NodeKind : std::uint8_t { kInterface, kRouter };

[[nodiscard]] const char* to_string(NodeKind kind) noexcept;

/// A geographically-mapped, AS-labelled node in an observed dataset.
struct GraphNode {
  Ipv4Addr addr;
  geo::GeoPoint location;
  std::uint32_t asn = 0;  ///< 0 = the paper's "separate AS" for unmapped IPs
};

/// An undirected edge by node index, stored with a <= b.
struct GraphEdge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend bool operator==(const GraphEdge&, const GraphEdge&) = default;
};

/// The interchange object between the measurement/mapping pipeline and the
/// analysis pipeline: the paper's "processed dataset" (Table I rows).
///
/// Nodes carry a geographic location and an AS number; edges are
/// deduplicated undirected node pairs. Self-loops (a Skitter anomaly the
/// paper discards) are rejected at insertion.
class AnnotatedGraph {
 public:
  explicit AnnotatedGraph(NodeKind kind, std::string name = {})
      : kind_(kind), name_(std::move(name)) {}

  std::uint32_t add_node(const GraphNode& node);

  /// Adds an undirected edge; returns false (and adds nothing) for
  /// self-loops, out-of-range endpoints, and duplicates.
  bool add_edge(std::uint32_t a, std::uint32_t b);

  /// True iff the exact undirected edge already exists.
  [[nodiscard]] bool has_edge(std::uint32_t a, std::uint32_t b) const noexcept;

  [[nodiscard]] NodeKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  [[nodiscard]] const GraphNode& node(std::uint32_t id) const noexcept {
    return nodes_[id];
  }
  [[nodiscard]] const std::vector<GraphNode>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<GraphEdge>& edges() const noexcept { return edges_; }

  /// Degree of every node (undirected).
  [[nodiscard]] std::vector<std::uint32_t> degrees() const;

  /// All node locations, in node order (convenience for geo analyses).
  [[nodiscard]] std::vector<geo::GeoPoint> locations() const;

 private:
  static std::uint64_t edge_key(std::uint32_t a, std::uint32_t b) noexcept;

  NodeKind kind_;
  std::string name_;
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  std::unordered_set<std::uint64_t> edge_set_;
};

}  // namespace geonet::net
