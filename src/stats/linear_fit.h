#pragma once

#include <span>

namespace geonet::stats {

/// Result of an ordinary least-squares straight-line fit y = slope*x + b.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< Coefficient of determination in [0, 1].
  std::size_t n = 0;       ///< Number of points actually used.

  /// Value of the fitted line at x.
  [[nodiscard]] double at(double x) const noexcept {
    return slope * x + intercept;
  }
};

/// Fits y = slope*x + intercept by ordinary least squares.
///
/// Points with non-finite coordinates are skipped. With fewer than two
/// usable points, or zero x-variance, the fit is degenerate: slope = 0,
/// intercept = mean(y) (or 0 with no points), r_squared = 0.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Weighted least squares with per-point non-negative weights.
LinearFit fit_line_weighted(std::span<const double> xs,
                            std::span<const double> ys,
                            std::span<const double> ws);

}  // namespace geonet::stats
