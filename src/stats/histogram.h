#pragma once

#include <cstddef>
#include <vector>

namespace geonet::stats {

/// Fixed-width binned histogram over [lo, hi).
///
/// The paper's distance-preference analysis (Section V) bins both link
/// lengths and node-pair distances into equal-width bins; this type is the
/// shared accumulator for both. Weights are doubles so the grid-accelerated
/// pair counter can add cell-product weights directly.
class Histogram {
 public:
  /// Creates a histogram of `bins` equal-width bins spanning [lo, hi).
  /// Requires bins > 0 and hi > lo.
  Histogram(double lo, double hi, std::size_t bins);

  /// Trivial single-bin histogram over [0, 1); a valid empty placeholder.
  Histogram() : Histogram(0.0, 1.0, 1) {}

  /// Adds `weight` to the bin containing x. Values outside [lo, hi) are
  /// tallied in underflow/overflow and excluded from bin totals. Values
  /// exactly at hi count as overflow. Non-finite x (NaN, ±inf with NaN
  /// semantics aside) is dropped entirely — it is neither a small nor a
  /// large distance, so it must not skew either tail.
  void add(double x, double weight = 1.0) noexcept;

  /// Adds `weight` directly to bin `b` (b < bin_count()).
  void add_to_bin(std::size_t b, double weight = 1.0) noexcept;

  /// Bin index for x, or bin_count() if out of range.
  [[nodiscard]] std::size_t bin_of(double x) const noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_width() const noexcept { return width_; }

  /// Left edge / centre of bin b.
  [[nodiscard]] double bin_left(std::size_t b) const noexcept;
  [[nodiscard]] double bin_center(std::size_t b) const noexcept;

  [[nodiscard]] double count(std::size_t b) const noexcept { return counts_[b]; }
  [[nodiscard]] const std::vector<double>& counts() const noexcept { return counts_; }
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }

  /// Sum of all in-range bin weights.
  [[nodiscard]] double total() const noexcept;

  /// Element-wise bin ratio this/denominator; bins where the denominator is
  /// zero yield 0. Requires identical binning.
  [[nodiscard]] std::vector<double> ratio(const Histogram& denominator) const;

  /// Adds `other`'s bins, underflow and overflow into this histogram.
  /// The parallel pair counters accumulate per-chunk histograms and merge
  /// them in chunk order (see src/exec/parallel.h), which keeps seeded
  /// runs byte-identical at any thread count. Throws std::invalid_argument
  /// unless both histograms share lo, hi and bin count.
  void merge(const Histogram& other);

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace geonet::stats
