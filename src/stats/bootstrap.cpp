#include "stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "stats/linear_fit.h"
#include "stats/summary.h"

namespace geonet::stats {

BootstrapInterval bootstrap_paired(std::span<const double> xs,
                                   std::span<const double> ys,
                                   const PairedStatistic& statistic,
                                   std::size_t resamples, double alpha,
                                   std::uint64_t seed) {
  BootstrapInterval out;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n == 0 || resamples == 0) return out;

  out.point = statistic(xs.subspan(0, n), ys.subspan(0, n));
  out.resamples = resamples;

  Rng rng(seed);
  std::vector<double> bx(n), by(n), values;
  values.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = rng.uniform_index(n);
      bx[i] = xs[j];
      by[i] = ys[j];
    }
    values.push_back(statistic(bx, by));
  }
  out.lo = quantile(values, alpha / 2.0);
  out.hi = quantile(values, 1.0 - alpha / 2.0);
  return out;
}

BootstrapInterval bootstrap_slope(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::size_t resamples, double alpha,
                                  std::uint64_t seed) {
  return bootstrap_paired(
      xs, ys,
      [](std::span<const double> x, std::span<const double> y) {
        return fit_line(x, y).slope;
      },
      resamples, alpha, seed);
}

}  // namespace geonet::stats
