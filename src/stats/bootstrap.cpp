#include "stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "exec/parallel.h"
#include "stats/linear_fit.h"
#include "stats/summary.h"

namespace geonet::stats {

BootstrapInterval bootstrap_paired(std::span<const double> xs,
                                   std::span<const double> ys,
                                   const PairedStatistic& statistic,
                                   std::size_t resamples, double alpha,
                                   std::uint64_t seed) {
  BootstrapInterval out;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n == 0 || resamples == 0) return out;

  out.point = statistic(xs.subspan(0, n), ys.subspan(0, n));
  out.resamples = resamples;

  // Resamples are split into chunks, each drawing from its own RNG
  // substream (seed ⊕ chunk) and filling a private value vector; the
  // chunk-ordered merge makes the value list — and so the quantiles —
  // byte-identical at any thread count.
  exec::RegionOptions region;
  region.name = "stats/bootstrap";
  region.grain = 16;
  const std::vector<double> values = exec::parallel_reduce<std::vector<double>>(
      resamples, region, [] { return std::vector<double>(); },
      [&](std::vector<double>& chunk_values, std::size_t begin,
          std::size_t end, std::size_t chunk) {
        Rng rng = exec::chunk_rng(seed, chunk);
        std::vector<double> bx(n), by(n);
        chunk_values.reserve(end - begin);
        for (std::size_t r = begin; r < end; ++r) {
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j = rng.uniform_index(n);
            bx[i] = xs[j];
            by[i] = ys[j];
          }
          chunk_values.push_back(statistic(bx, by));
        }
      },
      [](std::vector<double>& into, std::vector<double>&& from) {
        into.insert(into.end(), from.begin(), from.end());
      });
  out.lo = quantile(values, alpha / 2.0);
  out.hi = quantile(values, 1.0 - alpha / 2.0);
  return out;
}

BootstrapInterval bootstrap_slope(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::size_t resamples, double alpha,
                                  std::uint64_t seed) {
  return bootstrap_paired(
      xs, ys,
      [](std::span<const double> x, std::span<const double> y) {
        return fit_line(x, y).slope;
      },
      resamples, alpha, seed);
}

}  // namespace geonet::stats
