#include "stats/fenwick.h"

#include <algorithm>

namespace geonet::stats {

FenwickTree::FenwickTree(std::size_t n) : tree_(n + 1, 0.0), values_(n, 0.0) {}

FenwickTree::FenwickTree(const std::vector<double>& weights)
    : FenwickTree(weights.size()) {
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) set(i, weights[i]);
  }
}

void FenwickTree::set(std::size_t i, double weight) {
  add(i, weight - values_[i]);
}

void FenwickTree::add(std::size_t i, double delta) {
  if (i >= values_.size()) return;
  if (values_[i] + delta < 0.0) delta = -values_[i];
  values_[i] += delta;
  for (std::size_t j = i + 1; j <= values_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

double FenwickTree::prefix_sum(std::size_t i) const noexcept {
  i = std::min(i, values_.size());
  double sum = 0.0;
  for (std::size_t j = i; j > 0; j -= j & (~j + 1)) {
    sum += tree_[j];
  }
  return sum;
}

std::size_t FenwickTree::lower_bound(double target) const noexcept {
  if (values_.empty() || total() <= 0.0 || target >= total()) {
    return values_.size();
  }
  std::size_t pos = 0;
  std::size_t mask = 1;
  while (mask * 2 <= values_.size()) mask *= 2;
  for (; mask > 0; mask /= 2) {
    const std::size_t next = pos + mask;
    if (next <= values_.size() && tree_[next] <= target) {
      target -= tree_[next];
      pos = next;
    }
  }
  return pos;  // 0-based index of the element crossed
}

std::size_t FenwickTree::sample(Rng& rng) const noexcept {
  const double t = total();
  if (t <= 0.0) return values_.size();
  return lower_bound(rng.uniform() * t);
}

}  // namespace geonet::stats
