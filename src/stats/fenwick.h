#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.h"

namespace geonet::stats {

/// Fenwick (binary indexed) tree over non-negative double weights,
/// supporting O(log n) point update, prefix sum, and weighted sampling.
///
/// The ground-truth generator uses this to sample grid cells proportional
/// to their *remaining* router quota, which changes as ASes claim routers.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n);
  explicit FenwickTree(const std::vector<double>& weights);

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  /// Current weight at index i.
  [[nodiscard]] double value(std::size_t i) const noexcept { return values_[i]; }

  /// Sets the weight at index i (must be >= 0).
  void set(std::size_t i, double weight);

  /// Adds delta to the weight at index i (result clamped at 0).
  void add(std::size_t i, double delta);

  /// Sum of weights in [0, i) — i.e. excluding i.
  [[nodiscard]] double prefix_sum(std::size_t i) const noexcept;

  /// Total weight.
  [[nodiscard]] double total() const noexcept { return prefix_sum(size()); }

  /// Smallest index i with prefix_sum(i+1) > target (target in [0, total)).
  /// Returns size() when the tree is empty or total() == 0.
  [[nodiscard]] std::size_t lower_bound(double target) const noexcept;

  /// Draws an index with probability proportional to its weight;
  /// size() when the total weight is zero.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> tree_;    // 1-based internal array
  std::vector<double> values_;  // current weights (for value())
};

}  // namespace geonet::stats
