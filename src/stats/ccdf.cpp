#include "stats/ccdf.h"

#include <algorithm>
#include <cmath>

namespace geonet::stats {

namespace {

std::vector<double> sorted_finite(std::span<const double> xs) {
  std::vector<double> v;
  v.reserve(xs.size());
  for (const double x : xs) {
    if (std::isfinite(x)) v.push_back(x);
  }
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

std::vector<DistPoint> empirical_cdf(std::span<const double> xs) {
  const auto v = sorted_finite(xs);
  std::vector<DistPoint> out;
  const double n = static_cast<double>(v.size());
  for (std::size_t i = 0; i < v.size();) {
    std::size_t j = i;
    while (j + 1 < v.size() && v[j + 1] == v[i]) ++j;
    out.push_back({v[i], static_cast<double>(j + 1) / n});
    i = j + 1;
  }
  return out;
}

std::vector<DistPoint> empirical_ccdf(std::span<const double> xs) {
  const auto v = sorted_finite(xs);
  std::vector<DistPoint> out;
  const double n = static_cast<double>(v.size());
  for (std::size_t i = 0; i < v.size();) {
    std::size_t j = i;
    while (j + 1 < v.size() && v[j + 1] == v[i]) ++j;
    // P[X > x] over values strictly greater than v[i].
    out.push_back({v[i], static_cast<double>(v.size() - (j + 1)) / n});
    i = j + 1;
  }
  return out;
}

std::vector<DistPoint> log_log(std::span<const DistPoint> curve) {
  std::vector<DistPoint> out;
  out.reserve(curve.size());
  for (const auto& pt : curve) {
    if (pt.x > 0.0 && pt.p > 0.0) {
      out.push_back({std::log10(pt.x), std::log10(pt.p)});
    }
  }
  return out;
}

LinearFit fit_ccdf_tail(std::span<const double> xs, double lower_quantile) {
  const auto ccdf = empirical_ccdf(xs);
  const auto ll = log_log(ccdf);
  if (ll.size() < 3) return {};
  const auto start = static_cast<std::size_t>(
      lower_quantile * static_cast<double>(ll.size()));
  std::vector<double> lx, lp;
  for (std::size_t i = std::min(start, ll.size() - 3); i < ll.size(); ++i) {
    lx.push_back(ll[i].x);
    lp.push_back(ll[i].p);
  }
  return fit_line(lx, lp);
}

}  // namespace geonet::stats
