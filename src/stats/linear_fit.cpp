#include "stats/linear_fit.h"

#include <cmath>
#include <vector>

namespace geonet::stats {

LinearFit fit_line_weighted(std::span<const double> xs,
                            std::span<const double> ys,
                            std::span<const double> ws) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());

  double sw = 0.0, swx = 0.0, swy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = ws.empty() ? 1.0 : ws[i];
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i]) || !(w > 0.0)) continue;
    sw += w;
    swx += w * xs[i];
    swy += w * ys[i];
    ++fit.n;
  }
  if (fit.n == 0 || sw <= 0.0) return fit;

  const double mx = swx / sw;
  const double my = swy / sw;
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = ws.empty() ? 1.0 : ws[i];
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i]) || !(w > 0.0)) continue;
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += w * dx * dx;
    sxy += w * dx * dy;
    syy += w * dy * dy;
  }

  if (fit.n < 2 || sxx <= 0.0) {
    fit.slope = 0.0;
    fit.intercept = my;
    fit.r_squared = 0.0;
    return fit;
  }

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  return fit_line_weighted(xs, ys, {});
}

}  // namespace geonet::stats
