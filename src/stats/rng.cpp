#include "stats/rng.h"

#include <cmath>

namespace geonet::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

Rng Rng::fork(std::uint64_t label) noexcept {
  std::uint64_t mix = state_[0] ^ rotl(label, 29) ^ 0xd6e8feb86659fd93ULL;
  return Rng(splitmix64(mix));
}

}  // namespace geonet::stats
