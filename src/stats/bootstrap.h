#pragma once

#include <functional>
#include <span>

#include "stats/rng.h"

namespace geonet::stats {

/// Percentile bootstrap confidence interval for an arbitrary statistic of
/// paired samples — used to put uncertainty bands on the paper's fitted
/// slopes (Figure 2, Figure 5), where OLS standard errors are unreliable
/// because patch noise is far from i.i.d. Gaussian.
struct BootstrapInterval {
  double point = 0.0;   ///< statistic on the full sample
  double lo = 0.0;      ///< lower percentile bound
  double hi = 0.0;      ///< upper percentile bound
  std::size_t resamples = 0;
};

/// Statistic over paired data (xs, ys) of equal length.
using PairedStatistic =
    std::function<double(std::span<const double>, std::span<const double>)>;

/// Resamples (x, y) pairs with replacement `resamples` times and returns
/// the [alpha/2, 1-alpha/2] percentile interval of the statistic.
/// Resampling runs on the global exec pool in deterministic chunks (per
/// chunk RNG substreams, chunk-ordered merge): results depend only on the
/// inputs and seed, never on the thread count. `statistic` may be invoked
/// concurrently and must be safe to call from multiple threads.
BootstrapInterval bootstrap_paired(std::span<const double> xs,
                                   std::span<const double> ys,
                                   const PairedStatistic& statistic,
                                   std::size_t resamples = 400,
                                   double alpha = 0.05,
                                   std::uint64_t seed = 271828);

/// Convenience: bootstrap CI of the OLS slope of y on x.
BootstrapInterval bootstrap_slope(std::span<const double> xs,
                                  std::span<const double> ys,
                                  std::size_t resamples = 400,
                                  double alpha = 0.05,
                                  std::uint64_t seed = 271828);

}  // namespace geonet::stats
