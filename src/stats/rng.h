#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace geonet::stats {

/// Deterministic, seedable pseudo-random number generator.
///
/// Implements xoshiro256** (Blackman & Vigna) seeded through splitmix64,
/// so a single 64-bit seed fully determines every stream. All synthetic
/// datasets and generators in this library draw exclusively from Rng,
/// which makes every experiment reproducible bit-for-bit.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Equal seeds yield equal
  /// streams on every platform.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64 random bits.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal deviate (Box-Muller, cached spare).
  double normal() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Exponential deviate with the given mean (mean > 0).
  double exponential(double mean) noexcept;

  /// Poisson deviate with the given mean (>= 0). Uses Knuth's method for
  /// small means and a normal approximation above 64.
  std::uint64_t poisson(double mean) noexcept;

  /// Fisher-Yates shuffle of an index-addressable span.
  template <typename T>
  void shuffle(std::span<T> items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element index from a non-empty span.
  template <typename T>
  std::size_t pick_index(std::span<const T> items) noexcept {
    return static_cast<std::size_t>(uniform_index(items.size()));
  }

  /// Derives an independent child generator; the (seed, label) pair fully
  /// determines the child stream, so subsystems can split streams without
  /// interfering with one another.
  Rng fork(std::uint64_t label) noexcept;

 private:
  std::uint64_t state_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// splitmix64 step; exposed for deterministic hashing needs elsewhere.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace geonet::stats
