#include "stats/distributions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace geonet::stats {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s), cdf_(n) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (s < 0.0) throw std::invalid_argument("ZipfSampler: s must be >= 0");
  double cum = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    cum += std::pow(static_cast<double>(k), -s);
    cdf_[k - 1] = cum;
  }
  for (auto& c : cdf_) c /= cum;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::pmf(std::size_t k) const noexcept {
  if (k == 0 || k > cdf_.size()) return 0.0;
  const double prev = k == 1 ? 0.0 : cdf_[k - 2];
  return cdf_[k - 1] - prev;
}

double pareto(Rng& rng, double x_min, double alpha) noexcept {
  double u = rng.uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return x_min * std::pow(u, -1.0 / alpha);
}

double bounded_pareto(Rng& rng, double x_min, double x_max,
                      double alpha) noexcept {
  const double u = rng.uniform();
  const double la = std::pow(x_min, alpha);
  const double ha = std::pow(x_max, alpha);
  // Inverse CDF of the bounded Pareto.
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

std::size_t weighted_index(Rng& rng, std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) return weights.size();
  double target = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    target -= weights[i];
    if (target <= 0.0) return i;
  }
  return weights.size() - 1;
}

DiscreteSampler::DiscreteSampler(std::span<const double> weights)
    : cum_(weights.size()) {
  double cum = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cum += std::max(0.0, weights[i]);
    cum_[i] = cum;
  }
}

std::size_t DiscreteSampler::sample(Rng& rng) const noexcept {
  if (cum_.empty() || cum_.back() <= 0.0) return cum_.size();
  const double target = rng.uniform() * cum_.back();
  const auto it = std::upper_bound(cum_.begin(), cum_.end(), target);
  return std::min(static_cast<std::size_t>(it - cum_.begin()), cum_.size() - 1);
}

}  // namespace geonet::stats
