#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace geonet::stats {

/// Samples ranks 1..n with P[rank = k] proportional to k^{-s}.
///
/// City populations (Zipf's law for cities, s near 1) and AS footprints
/// in the synthetic world are drawn from this sampler. Sampling is
/// O(log n) by binary search over the precomputed CDF.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s >= 0 (s = 0 degenerates to uniform ranks).
  ZipfSampler(std::size_t n, double s);

  /// Draws a rank in [1, n].
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  /// P[rank = k] for k in [1, n].
  [[nodiscard]] double pmf(std::size_t k) const noexcept;

  [[nodiscard]] std::size_t n() const noexcept { return cdf_.size(); }
  [[nodiscard]] double s() const noexcept { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k-1] = P[rank <= k]
};

/// Continuous Pareto (power-law tail) deviate: x >= x_min with density
/// proportional to x^{-(alpha+1)}. Requires x_min > 0, alpha > 0.
double pareto(Rng& rng, double x_min, double alpha) noexcept;

/// Bounded Pareto deviate on [x_min, x_max].
double bounded_pareto(Rng& rng, double x_min, double x_max,
                      double alpha) noexcept;

/// Samples an index with probability proportional to weights[i].
/// Returns weights.size() if all weights are zero/negative.
std::size_t weighted_index(Rng& rng, std::span<const double> weights) noexcept;

/// Precomputed cumulative table for repeated weighted index sampling in
/// O(log n) per draw.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(std::span<const double> weights);

  /// Draws an index in [0, size()); size() itself if the total weight is 0.
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return cum_.size(); }
  [[nodiscard]] double total_weight() const noexcept {
    return cum_.empty() ? 0.0 : cum_.back();
  }

 private:
  std::vector<double> cum_;
};

}  // namespace geonet::stats
