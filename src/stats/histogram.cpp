#include "stats/histogram.h"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace geonet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0.0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

std::size_t Histogram::bin_of(double x) const noexcept {
  if (!std::isfinite(x) || x < lo_ || x >= hi_) return counts_.size();
  auto b = static_cast<std::size_t>((x - lo_) / width_);
  if (b >= counts_.size()) b = counts_.size() - 1;  // guard fp edge at hi
  return b;
}

void Histogram::add(double x, double weight) noexcept {
  if (!std::isfinite(x)) return;  // NaN/inf: neither tail, dropped
  const std::size_t b = bin_of(x);
  if (b < counts_.size()) {
    counts_[b] += weight;
  } else if (x < lo_) {
    underflow_ += weight;
  } else {
    overflow_ += weight;
  }
}

void Histogram::merge(const Histogram& other) {
  if (other.lo_ != lo_ || other.hi_ != hi_ ||
      other.counts_.size() != counts_.size()) {
    throw std::invalid_argument("Histogram::merge: binning mismatch");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

void Histogram::add_to_bin(std::size_t b, double weight) noexcept {
  if (b < counts_.size()) counts_[b] += weight;
}

double Histogram::bin_left(std::size_t b) const noexcept {
  return lo_ + width_ * static_cast<double>(b);
}

double Histogram::bin_center(std::size_t b) const noexcept {
  return bin_left(b) + 0.5 * width_;
}

double Histogram::total() const noexcept {
  return std::accumulate(counts_.begin(), counts_.end(), 0.0);
}

std::vector<double> Histogram::ratio(const Histogram& denominator) const {
  std::vector<double> out(counts_.size(), 0.0);
  const std::size_t n = std::min(counts_.size(), denominator.counts_.size());
  for (std::size_t b = 0; b < n; ++b) {
    if (denominator.counts_[b] > 0.0) out[b] = counts_[b] / denominator.counts_[b];
  }
  return out;
}

}  // namespace geonet::stats
