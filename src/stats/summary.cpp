#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace geonet::stats {

namespace {

std::vector<double> finite_only(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) {
    if (std::isfinite(x)) out.push_back(x);
  }
  return out;
}

}  // namespace

double mean(std::span<const double> xs) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const double x : xs) {
    if (std::isfinite(x)) {
      sum += x;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  auto v = finite_only(xs);
  s.n = v.size();
  if (v.empty()) return s;

  s.mean = std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
  double ss = 0.0;
  for (const double x : v) {
    const double d = x - s.mean;
    ss += d * d;
  }
  s.stddev = v.size() > 1 ? std::sqrt(ss / static_cast<double>(v.size() - 1)) : 0.0;

  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  const std::size_t m = v.size() / 2;
  s.median = (v.size() % 2 == 1) ? v[m] : 0.5 * (v[m - 1] + v[m]);
  return s;
}

double quantile(std::span<const double> xs, double q) {
  auto v = finite_only(xs);
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  double sx = 0.0, sy = 0.0;
  std::size_t m = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i])) continue;
    sx += xs[i];
    sy += ys[i];
    ++m;
  }
  if (m < 2) return 0.0;
  const double mx = sx / static_cast<double>(m);
  const double my = sy / static_cast<double>(m);
  double sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(xs[i]) || !std::isfinite(ys[i])) continue;
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> average_ranks(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });

  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  const auto rx = average_ranks(xs.subspan(0, n));
  const auto ry = average_ranks(ys.subspan(0, n));
  return pearson(rx, ry);
}

}  // namespace geonet::stats
