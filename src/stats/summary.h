#pragma once

#include <span>
#include <vector>

namespace geonet::stats {

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Sample standard deviation (n-1 denominator).
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary; non-finite values are ignored.
Summary summarize(std::span<const double> xs);

/// Arithmetic mean; 0 for an empty span. Non-finite values ignored.
double mean(std::span<const double> xs);

/// q-quantile (0 <= q <= 1) by linear interpolation of order statistics.
double quantile(std::span<const double> xs, double q);

/// Pearson correlation coefficient; 0 when degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation; average ranks for ties.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Ranks with ties averaged (1-based ranks), as used by spearman().
std::vector<double> average_ranks(std::span<const double> xs);

}  // namespace geonet::stats
