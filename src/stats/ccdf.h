#pragma once

#include <span>
#include <vector>

#include "stats/linear_fit.h"

namespace geonet::stats {

/// One point of an empirical (C)CDF curve.
struct DistPoint {
  double x = 0.0;
  double p = 0.0;
};

/// Empirical CDF: P[X <= x] evaluated at each distinct sample value.
std::vector<DistPoint> empirical_cdf(std::span<const double> xs);

/// Empirical complementary CDF: P[X > x] at each distinct sample value.
/// The paper's Figure 7 plots these on log-log axes for AS size measures.
std::vector<DistPoint> empirical_ccdf(std::span<const double> xs);

/// log10/log10 transform of a curve, dropping points with x <= 0 or p <= 0.
std::vector<DistPoint> log_log(std::span<const DistPoint> curve);

/// Fits the tail exponent of a CCDF: slope of log10 P[X > x] vs log10 x over
/// the upper part of the curve (x above the q-quantile of distinct values,
/// default the median). For a Pareto tail with P[X > x] ~ x^-a, returns ~ -a.
LinearFit fit_ccdf_tail(std::span<const double> xs, double lower_quantile = 0.5);

}  // namespace geonet::stats
