#pragma once

#include <cstdint>
#include <string>

namespace geonet::store {

/// The on-disk snapshot format version. Bumped whenever any codec changes
/// byte layout; it is written into every snapshot header and mixed into
/// every cache fingerprint, so an old binary can never misread a new
/// snapshot (and vice versa) and a rebuilt binary can never serve stale
/// cache entries across a format change.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Build provenance: who produced an artifact. Embedded in every snapshot
/// header and run report, and part of every cache fingerprint — a cache
/// entry written by a different compiler or build type is a miss, never a
/// stale hit (floating-point results may legitimately differ across
/// builds).
struct BuildInfo {
  std::string tool_version;  ///< geonet version, e.g. "1.0.0"
  std::string compiler;      ///< e.g. "gcc 13.2.0"
  std::string build_type;    ///< CMAKE_BUILD_TYPE, e.g. "Release"
  std::string git_describe;  ///< `git describe --always --dirty` at configure
                             ///< time, "unknown" outside a work tree
};

/// The provenance of this binary (computed once).
const BuildInfo& build_info();

/// Provenance as a JSON object — the `provenance` section of run reports
/// and the stamp on trace/profile artifacts:
/// {"format_version":1,"tool_version":...,"compiler":...,"build_type":...,
///  "git_describe":...}.
std::string provenance_json();

}  // namespace geonet::store
