#include "store/build_info.h"

#include "obs/json.h"

namespace geonet::store {

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
#ifdef GEONET_VERSION
    b.tool_version = GEONET_VERSION;
#else
    b.tool_version = "unknown";
#endif
#if defined(__clang__)
    b.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
    b.compiler = std::string("gcc ") + __VERSION__;
#else
    b.compiler = "unknown";
#endif
#ifdef GEONET_BUILD_TYPE
    b.build_type = GEONET_BUILD_TYPE;
#else
    b.build_type = "unknown";
#endif
    if (b.build_type.empty()) b.build_type = "unspecified";
#ifdef GEONET_GIT_DESCRIBE
    b.git_describe = GEONET_GIT_DESCRIBE;
#endif
    if (b.git_describe.empty()) b.git_describe = "unknown";
    return b;
  }();
  return info;
}

std::string provenance_json() {
  const BuildInfo& info = build_info();
  obs::JsonWriter json;
  json.begin_object();
  json.key("format_version").value(static_cast<std::uint64_t>(kFormatVersion));
  json.key("tool_version").value(info.tool_version);
  json.key("compiler").value(info.compiler);
  json.key("build_type").value(info.build_type);
  json.key("git_describe").value(info.git_describe);
  json.end_object();
  return json.str();
}

}  // namespace geonet::store
