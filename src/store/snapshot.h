#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "err/status.h"
#include "store/build_info.h"
#include "store/bytes.h"

namespace geonet::store {

/// The "GEOS" versioned chunked snapshot container — the one binary
/// format every persisted artifact uses (graph snapshots, cached study
/// phases, scenario artifacts). Layout, all integers little-endian:
///
///   'G' 'E' 'O' 'S'                        magic
///   u32  format_version                    kFormatVersion at write time
///   u64  header_len                        length of the header block
///   header block:                          (ByteWriter encoding)
///     str tool_version                     build provenance...
///     str compiler
///     str build_type
///     u32 section_count
///   u64  header_checksum                   fnv1a64 of the header block
///   section x section_count:
///     u32 type                             FourCC, e.g. 'GRPH'
///     u64 payload_len
///     u64 payload_checksum                 fnv1a64 of the payload
///     payload bytes
///
/// Readers verify the magic, version, and every checksum, and *skip*
/// sections whose type they do not recognise — so a newer writer can add
/// sections without breaking older readers of the same format version.
/// Any damage (truncation, bit flips, a bad length) surfaces as an
/// err::Status, never a crash or an over-read: the decoder bounds every
/// length against the remaining input. tools/check_snapshot.py is the
/// out-of-process twin of this parser.

/// Builds a section type tag from four ASCII characters.
constexpr std::uint32_t fourcc(char a, char b, char c, char d) noexcept {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

/// "GRPH" -> printable tag for diagnostics.
[[nodiscard]] std::string fourcc_name(std::uint32_t type);

/// Assembles a snapshot from typed sections.
class SnapshotWriter {
 public:
  void add_section(std::uint32_t type, std::vector<std::byte> payload);

  /// Renders the complete snapshot byte stream (header from build_info()).
  [[nodiscard]] std::vector<std::byte> finish() const;

 private:
  struct Section {
    std::uint32_t type;
    std::vector<std::byte> payload;
  };
  std::vector<Section> sections_;
};

/// A parsed view over snapshot bytes; payload spans alias the input, so
/// the backing buffer must outlive the view.
class SnapshotView {
 public:
  struct Section {
    std::uint32_t type = 0;
    std::span<const std::byte> payload;
  };

  /// Parses and validates (magic, version, header and section checksums,
  /// every length bounded by the remaining input). Failure codes:
  /// kDataLoss for corruption or truncation, kInvalidArgument for a
  /// format-version mismatch.
  static err::Result<SnapshotView> parse(std::span<const std::byte> bytes);

  [[nodiscard]] std::uint32_t format_version() const noexcept {
    return format_version_;
  }
  [[nodiscard]] const BuildInfo& provenance() const noexcept {
    return provenance_;
  }
  [[nodiscard]] const std::vector<Section>& sections() const noexcept {
    return sections_;
  }
  /// First section of the given type, or nullptr.
  [[nodiscard]] const Section* find(std::uint32_t type) const noexcept;
  /// All sections of the given type, in file order.
  [[nodiscard]] std::vector<Section> find_all(std::uint32_t type) const;

 private:
  std::uint32_t format_version_ = 0;
  BuildInfo provenance_;
  std::vector<Section> sections_;
};

}  // namespace geonet::store
