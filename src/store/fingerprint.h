#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace geonet::store {

/// A 128-bit content-address. The cache keys every artifact by one of
/// these; 32 lowercase hex digits name the entry file on disk.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128&, const Digest128&) = default;

  [[nodiscard]] std::string hex() const;
  /// Parses 32 hex digits; nullopt on anything else.
  static std::optional<Digest128> parse_hex(std::string_view text);
};

/// Canonical input fingerprint builder. Every options struct that feeds a
/// cached computation streams its fields in as (name, typed value) pairs;
/// the digest is order- and type-sensitive, so renaming a field, changing
/// its type, or adding a field all change the key — exactly the
/// "different inputs must never collide onto one cache entry" contract.
///
/// Two independent FNV-1a lanes with distinct offset bases give the
/// 128 bits. Not cryptographic — the cache defends against accidents,
/// not adversaries (it lives in a user-owned directory).
class Fingerprint {
 public:
  /// An empty fingerprint (no provenance). Prefer with_provenance().
  Fingerprint() = default;

  /// The canonical starting point: format version + build provenance are
  /// already mixed in, so a rebuilt or upgraded binary can never hit
  /// entries written by the old one.
  static Fingerprint with_provenance();

  Fingerprint& add(std::string_view field, std::string_view value);
  Fingerprint& add(std::string_view field, const char* value) {
    return add(field, std::string_view(value));
  }
  Fingerprint& add(std::string_view field, std::uint64_t value);
  Fingerprint& add(std::string_view field, std::int64_t value);
  Fingerprint& add(std::string_view field, std::uint32_t value) {
    return add(field, static_cast<std::uint64_t>(value));
  }
  Fingerprint& add(std::string_view field, double value);
  Fingerprint& add(std::string_view field, bool value);
  Fingerprint& add_bytes(std::string_view field,
                         std::span<const std::byte> bytes);
  /// Mixes a whole sub-digest in (e.g. a graph content digest).
  Fingerprint& add(std::string_view field, const Digest128& value);

  [[nodiscard]] Digest128 digest() const noexcept { return {hi_, lo_}; }

 private:
  void mix(std::string_view field, std::uint8_t type_tag,
           std::span<const std::byte> payload);

  std::uint64_t hi_ = 0xcbf29ce484222325ULL;
  std::uint64_t lo_ = 0x84222325cbf29ce4ULL;
};

}  // namespace geonet::store
