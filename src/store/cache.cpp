#include "store/cache.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#include "obs/log.h"
#include "obs/metrics.h"
#include "store/bytes.h"
#include "store/fs.h"
#include "store/snapshot.h"

namespace geonet::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kEntrySuffix = ".geos";
constexpr const char* kQuarantineDir = "quarantine";

struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& puts;
  obs::Counter& corrupt;
  obs::Counter& evictions;
  obs::Counter& bytes_read;
  obs::Counter& bytes_written;
};

CacheMetrics& metrics() {
  static CacheMetrics m{
      obs::MetricsRegistry::global().counter("store.hits"),
      obs::MetricsRegistry::global().counter("store.misses"),
      obs::MetricsRegistry::global().counter("store.puts"),
      obs::MetricsRegistry::global().counter("store.corrupt"),
      obs::MetricsRegistry::global().counter("store.evictions"),
      obs::MetricsRegistry::global().counter("store.bytes_read"),
      obs::MetricsRegistry::global().counter("store.bytes_written"),
  };
  return m;
}

std::int64_t mtime_seconds(const fs::path& path) {
  std::error_code ec;
  const fs::file_time_type t = fs::last_write_time(path, ec);
  if (ec) return 0;
  // file_clock's epoch is unspecified; report Unix time so 'cache ls'
  // prints something a human can read. (clock_cast is missing from this
  // libstdc++, hence the now()-anchored conversion.)
  const auto sys =
      std::chrono::system_clock::now() +
      std::chrono::duration_cast<std::chrono::system_clock::duration>(
          t - fs::file_time_type::clock::now());
  return std::chrono::duration_cast<std::chrono::seconds>(
             sys.time_since_epoch())
      .count();
}

/// Live entries under `dir` (non-recursive; quarantine/ is not scanned).
std::vector<CacheEntryInfo> scan(const std::string& dir) {
  std::vector<CacheEntryInfo> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() != 32 + 5 || name.substr(32) != kEntrySuffix) continue;
    const auto key = Digest128::parse_hex(name.substr(0, 32));
    if (!key) continue;
    CacheEntryInfo info;
    info.key = *key;
    std::error_code size_ec;
    info.bytes = static_cast<std::uint64_t>(entry.file_size(size_ec));
    info.mtime_s = mtime_seconds(entry.path());
    out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const CacheEntryInfo& a, const CacheEntryInfo& b) {
              if (a.mtime_s != b.mtime_s) return a.mtime_s < b.mtime_s;
              const std::string ha = a.key.hex(), hb = b.key.hex();
              return ha < hb;
            });
  return out;
}

}  // namespace

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {}

std::string ArtifactCache::entry_path(const Digest128& key) const {
  return dir_ + "/" + key.hex() + kEntrySuffix;
}

void ArtifactCache::maybe_corrupt(const Digest128& key,
                                  std::vector<std::byte>& bytes) const {
  if (corruption_.probability <= 0.0 || bytes.empty()) return;
  // Entry-deterministic decision and flip position: the same fault plan
  // corrupts the same entries at the same bit, run after run.
  Fingerprint fp;
  fp.add("cache-corrupt.seed", corruption_.seed);
  fp.add("cache-corrupt.key", key);
  const Digest128 digest = fp.digest();
  const double draw = static_cast<double>(digest.hi >> 11) /
                      static_cast<double>(1ULL << 53);
  if (draw >= corruption_.probability) return;
  const std::size_t bit = static_cast<std::size_t>(
      digest.lo % (bytes.size() * 8));
  bytes[bit / 8] ^= static_cast<std::byte>(1u << (bit % 8));
}

err::Result<std::vector<std::byte>> ArtifactCache::get(const Digest128& key) {
  const std::string path = entry_path(key);
  auto bytes = read_file_bytes(path);
  if (!bytes.is_ok()) {
    metrics().misses.add();
    return err::Status::not_found("cache miss for " + key.hex());
  }
  std::vector<std::byte> payload = std::move(bytes).value();
  metrics().bytes_read.add(payload.size());
  maybe_corrupt(key, payload);
  const auto parsed = SnapshotView::parse(payload);
  if (!parsed.is_ok()) {
    metrics().corrupt.add();
    const std::string parked = quarantine(key);
    obs::log(obs::LogLevel::kWarn,
             "cache entry %s corrupt (%s); quarantined to %s, recomputing",
             key.hex().c_str(), parsed.error_message().c_str(),
             parked.c_str());
    return err::Status(parsed.status().code(),
                       "cache entry " + key.hex() + " corrupt: " +
                           parsed.error_message() + " (quarantined)");
  }
  metrics().hits.add();
  return payload;
}

err::Status ArtifactCache::put(const Digest128& key,
                               std::span<const std::byte> snapshot) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return err::Status::unavailable("cannot create cache dir " + dir_ + ": " +
                                    ec.message());
  }
  std::string error;
  if (!atomic_write_bytes(entry_path(key), snapshot, &error)) {
    return err::Status::unavailable("cache put failed: " + error);
  }
  metrics().puts.add();
  metrics().bytes_written.add(snapshot.size());
  return err::Status::ok();
}

std::string ArtifactCache::quarantine(const Digest128& key) {
  const std::string quarantine_dir = dir_ + "/" + kQuarantineDir;
  std::error_code ec;
  fs::create_directories(quarantine_dir, ec);
  const std::string from = entry_path(key);
  const std::string to =
      quarantine_dir + "/" + key.hex() + kEntrySuffix;
  fs::rename(from, to, ec);
  if (ec) {
    // A quarantine that cannot move the file must still get it out of the
    // lookup path, or the next run would hit the same damage.
    fs::remove(from, ec);
    return from + " (removed)";
  }
  return to;
}

std::vector<CacheEntryInfo> ArtifactCache::ls() const { return scan(dir_); }

CacheStats ArtifactCache::stats() const {
  CacheStats out;
  for (const CacheEntryInfo& entry : scan(dir_)) {
    ++out.entries;
    out.bytes += entry.bytes;
  }
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(dir_ + "/" + kQuarantineDir, ec)) {
    if (entry.is_regular_file()) ++out.quarantined;
  }
  return out;
}

std::size_t ArtifactCache::gc(std::uint64_t max_bytes) {
  std::vector<CacheEntryInfo> entries = scan(dir_);
  std::uint64_t total = 0;
  for (const CacheEntryInfo& entry : entries) total += entry.bytes;
  std::size_t evicted = 0;
  for (const CacheEntryInfo& entry : entries) {
    if (total <= max_bytes) break;
    std::error_code ec;
    if (fs::remove(entry_path(entry.key), ec) && !ec) {
      total -= entry.bytes;
      ++evicted;
      metrics().evictions.add();
    }
  }
  return evicted;
}

std::size_t ArtifactCache::verify() {
  std::size_t bad = 0;
  for (const CacheEntryInfo& entry : scan(dir_)) {
    auto bytes = read_file_bytes(entry_path(entry.key));
    if (!bytes.is_ok()) continue;  // raced with gc or another process
    std::vector<std::byte> payload = std::move(bytes).value();
    maybe_corrupt(entry.key, payload);
    const auto parsed = SnapshotView::parse(payload);
    if (parsed.is_ok()) continue;
    ++bad;
    metrics().corrupt.add();
    const std::string parked = quarantine(entry.key);
    obs::log(obs::LogLevel::kWarn, "cache verify: %s corrupt (%s) -> %s",
             entry.key.hex().c_str(), parsed.error_message().c_str(),
             parked.c_str());
  }
  return bad;
}

}  // namespace geonet::store
