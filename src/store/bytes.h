#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace geonet::store {

/// Little-endian binary primitives shared by every snapshot codec in the
/// pipeline (graph snapshots, study-phase payloads, scenario artifacts).
/// One writer/reader pair means one byte-layout policy: fixed-width
/// little-endian integers, bit-cast doubles (NaN payloads survive a round
/// trip exactly), and u64-length-prefixed strings/blobs.

/// FNV-1a 64-bit over a byte range — the checksum of every snapshot
/// section and one lane of the cache fingerprint. Chosen for having a
/// trivial, dependency-free twin in tools/check_snapshot.py.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> bytes,
                                    std::uint64_t seed =
                                        0xcbf29ce484222325ULL) noexcept;

/// Lowercase hex rendering of a u64 (16 digits, zero padded).
[[nodiscard]] std::string to_hex(std::uint64_t v);

/// Appends primitive values to a growing byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// u64 length followed by the raw bytes.
  void str(std::string_view s);
  void bytes(std::span<const std::byte> b);
  /// Raw bytes, no length prefix (for nesting pre-encoded payloads).
  void raw(std::span<const std::byte> b);

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept {
    return buf_;
  }

 private:
  std::vector<std::byte> buf_;
};

/// Reads primitives back out of a byte span. Never throws and never reads
/// past the end: any overrun (including a corrupt length prefix larger
/// than the remaining input) trips a sticky failure flag and every later
/// read returns a zero value. Callers check ok() once, after decoding.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) noexcept
      : bytes_(bytes) {}

  std::uint8_t u8() noexcept;
  std::uint32_t u32() noexcept;
  std::uint64_t u64() noexcept;
  double f64() noexcept;
  bool boolean() noexcept { return u8() != 0; }
  std::string str();
  /// u64-length-prefixed blob; the view aliases the input span.
  std::span<const std::byte> bytes();
  /// Exactly n raw bytes, no prefix.
  std::span<const std::byte> raw(std::size_t n) noexcept;

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  void skip(std::size_t n) noexcept;

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace geonet::store
