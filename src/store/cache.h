#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "err/status.h"
#include "store/fingerprint.h"

namespace geonet::store {

/// Deterministic read-side corruption — the `cache-corrupt` fault clause
/// (see fault::FaultPlan and docs/robustness.md). With probability
/// `probability` per entry (decided by hashing the entry key with `seed`,
/// so the same plan damages the same entries every run), one bit of the
/// entry is flipped after the file is read and before validation. The
/// checksum layer must then detect it, quarantine the entry and force a
/// recompute — which is exactly what the corruption drills assert.
struct CorruptionFault {
  double probability = 0.0;
  std::uint64_t seed = 0;
};

struct CacheEntryInfo {
  Digest128 key;
  std::uint64_t bytes = 0;
  std::int64_t mtime_s = 0;  ///< seconds since the Unix epoch
};

struct CacheStats {
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t quarantined = 0;  ///< entries parked in quarantine/
};

/// Content-addressed on-disk artifact cache (`--cache-dir`,
/// `GEONET_CACHE_DIR`). Entries are GEOS snapshots named by the 32-hex
/// digest of their input fingerprint: `<dir>/<digest>.geos`. The store
/// never trusts what it reads back — every get() re-validates the full
/// snapshot (magic, version, checksums) and a bad entry is moved to
/// `<dir>/quarantine/` and reported as kDataLoss so the caller recomputes;
/// corruption is never a crash and never a silent wrong answer.
///
/// Counters (see docs/observability.md): store.hits, store.misses,
/// store.puts, store.corrupt, store.evictions, store.bytes_read,
/// store.bytes_written.
class ArtifactCache {
 public:
  /// Creates `dir` (and quarantine/) on demand at first put.
  explicit ArtifactCache(std::string dir);

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  void set_corruption(const CorruptionFault& fault) noexcept {
    corruption_ = fault;
  }

  /// Validated snapshot bytes for `key`. kNotFound on a miss; kDataLoss
  /// (or kInvalidArgument for a format-version mismatch) when the entry
  /// was damaged — it has already been quarantined.
  err::Result<std::vector<std::byte>> get(const Digest128& key);

  /// Atomically stores snapshot bytes under `key` (write temp + rename).
  err::Status put(const Digest128& key, std::span<const std::byte> snapshot);

  /// All live entries, oldest first.
  [[nodiscard]] std::vector<CacheEntryInfo> ls() const;
  [[nodiscard]] CacheStats stats() const;

  /// Evicts oldest entries until total size <= max_bytes; returns the
  /// number evicted.
  std::size_t gc(std::uint64_t max_bytes);

  /// Re-validates every entry; corrupt ones are quarantined. Returns the
  /// number of bad entries found.
  std::size_t verify();

  [[nodiscard]] std::string entry_path(const Digest128& key) const;

 private:
  std::string quarantine(const Digest128& key);
  void maybe_corrupt(const Digest128& key,
                     std::vector<std::byte>& bytes) const;

  std::string dir_;
  CorruptionFault corruption_;
};

}  // namespace geonet::store
