#include "store/fs.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace geonet::store {

namespace {

void set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

/// Distinct temp names per process and per call, so concurrent writers
/// (parallel ctest jobs sharing a results dir) never clobber each
/// other's in-flight temp file.
std::string temp_name(const std::string& path) {
  static std::atomic<std::uint64_t> sequence{0};
  return path + ".tmp." + std::to_string(::getpid()) + "." +
         std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

bool atomic_write(const std::string& path,
                  const std::function<bool(std::ostream&)>& writer,
                  std::string* error) {
  const std::string temp = temp_name(path);
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) {
      set_error(error, "cannot open temp file " + temp);
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return false;
    }
    bool ok = false;
    try {
      ok = writer(out);
    } catch (...) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      throw;
    }
    out.flush();
    if (!ok || !out) {
      set_error(error, ok ? "stream failure writing " + temp
                          : "payload writer aborted for " + path);
      out.close();
      std::error_code ec;
      std::filesystem::remove(temp, ec);
      return false;
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    set_error(error, "cannot rename " + temp + " -> " + path + ": " +
                         ec.message());
    std::error_code ec2;
    std::filesystem::remove(temp, ec2);
    return false;
  }
  return true;
}

bool atomic_write_text(const std::string& path, std::string_view content,
                       std::string* error) {
  return atomic_write(
      path,
      [&](std::ostream& out) -> bool {
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        return static_cast<bool>(out);
      },
      error);
}

bool atomic_write_bytes(const std::string& path,
                        std::span<const std::byte> content,
                        std::string* error) {
  return atomic_write(
      path,
      [&](std::ostream& out) -> bool {
        out.write(reinterpret_cast<const char*>(content.data()),
                  static_cast<std::streamsize>(content.size()));
        return static_cast<bool>(out);
      },
      error);
}

err::Result<std::vector<std::byte>> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return err::Status::not_found("cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streampos end = in.tellg();
  if (end < 0) return err::Status::data_loss("cannot size " + path);
  in.seekg(0, std::ios::beg);
  std::vector<std::byte> bytes(static_cast<std::size_t>(end));
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }
  if (!in) return err::Status::data_loss("short read from " + path);
  return bytes;
}

std::string slug(std::string_view label) {
  std::string out;
  out.reserve(label.size());
  bool pending_separator = false;
  for (const char c : label) {
    char mapped = 0;
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
        c == '-') {
      mapped = c;
    } else if (c >= 'A' && c <= 'Z') {
      mapped = static_cast<char>(c - 'A' + 'a');
    }
    if (mapped == 0) {
      pending_separator = !out.empty();
      continue;
    }
    if (pending_separator) {
      out += '_';
      pending_separator = false;
    }
    out += mapped;
  }
  return out;
}

}  // namespace geonet::store
