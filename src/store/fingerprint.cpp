#include "store/fingerprint.h"

#include <bit>

#include "store/build_info.h"
#include "store/bytes.h"

namespace geonet::store {

std::string Digest128::hex() const { return to_hex(hi) + to_hex(lo); }

std::optional<Digest128> Digest128::parse_hex(std::string_view text) {
  if (text.size() != 32) return std::nullopt;
  Digest128 out;
  for (std::size_t i = 0; i < 32; ++i) {
    const char c = text[i];
    std::uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      return std::nullopt;
    }
    (i < 16 ? out.hi : out.lo) = ((i < 16 ? out.hi : out.lo) << 4) | nibble;
  }
  return out;
}

Fingerprint Fingerprint::with_provenance() {
  Fingerprint fp;
  const BuildInfo& info = build_info();
  fp.add("store.format_version",
         static_cast<std::uint64_t>(kFormatVersion));
  fp.add("build.tool_version", info.tool_version);
  fp.add("build.compiler", info.compiler);
  fp.add("build.build_type", info.build_type);
  return fp;
}

namespace {

std::span<const std::byte> as_span(std::string_view s) noexcept {
  return std::as_bytes(std::span<const char>(s.data(), s.size()));
}

std::span<const std::byte> as_span(const std::uint64_t& v) noexcept {
  return std::as_bytes(std::span<const std::uint64_t>(&v, 1));
}

}  // namespace

void Fingerprint::mix(std::string_view field, std::uint8_t type_tag,
                      std::span<const std::byte> payload) {
  // Each addition hashes: field name, a type tag, the payload length and
  // the payload bytes — so ("ab", "c") can never collide with ("a", "bc")
  // and a double can never alias the integer with the same bit pattern.
  const std::byte tag{type_tag};
  const std::uint64_t sizes[2] = {field.size(), payload.size()};
  for (std::uint64_t* lane : {&hi_, &lo_}) {
    std::uint64_t h = *lane;
    // The lanes must mix the same bytes differently or they would be
    // equal forever; the second lane gets every chunk pre-scrambled.
    const std::uint64_t spice = (lane == &lo_) ? 0x9e3779b97f4a7c15ULL : 0;
    h = fnv1a64(as_span(sizes[0] ^ spice), h);
    h = fnv1a64(as_span(field), h);
    h = fnv1a64(std::span<const std::byte>(&tag, 1), h);
    h = fnv1a64(as_span(sizes[1] ^ spice), h);
    h = fnv1a64(payload, h);
    *lane = h;
  }
}

Fingerprint& Fingerprint::add(std::string_view field, std::string_view value) {
  mix(field, 1, as_span(value));
  return *this;
}

Fingerprint& Fingerprint::add(std::string_view field, std::uint64_t value) {
  mix(field, 2, as_span(value));
  return *this;
}

Fingerprint& Fingerprint::add(std::string_view field, std::int64_t value) {
  mix(field, 3, as_span(static_cast<std::uint64_t>(value)));
  return *this;
}

Fingerprint& Fingerprint::add(std::string_view field, double value) {
  mix(field, 4, as_span(std::bit_cast<std::uint64_t>(value)));
  return *this;
}

Fingerprint& Fingerprint::add(std::string_view field, bool value) {
  mix(field, 5, as_span(static_cast<std::uint64_t>(value ? 1 : 0)));
  return *this;
}

Fingerprint& Fingerprint::add_bytes(std::string_view field,
                                    std::span<const std::byte> bytes) {
  mix(field, 6, bytes);
  return *this;
}

Fingerprint& Fingerprint::add(std::string_view field, const Digest128& value) {
  const std::uint64_t words[2] = {value.hi, value.lo};
  mix(field, 7, std::as_bytes(std::span<const std::uint64_t>(words, 2)));
  return *this;
}

}  // namespace geonet::store
