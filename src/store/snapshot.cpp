#include "store/snapshot.h"

namespace geonet::store {

namespace {

constexpr char kMagic[4] = {'G', 'E', 'O', 'S'};

}  // namespace

std::string fourcc_name(std::uint32_t type) {
  std::string out;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((type >> (8 * i)) & 0xFF);
    out += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return out;
}

void SnapshotWriter::add_section(std::uint32_t type,
                                 std::vector<std::byte> payload) {
  sections_.push_back({type, std::move(payload)});
}

std::vector<std::byte> SnapshotWriter::finish() const {
  const BuildInfo& info = build_info();
  ByteWriter header;
  header.str(info.tool_version);
  header.str(info.compiler);
  header.str(info.build_type);
  header.u32(static_cast<std::uint32_t>(sections_.size()));

  ByteWriter out;
  out.raw(std::as_bytes(std::span<const char>(kMagic, 4)));
  out.u32(kFormatVersion);
  out.u64(header.size());
  out.raw(header.buffer());
  out.u64(fnv1a64(header.buffer()));
  for (const Section& section : sections_) {
    out.u32(section.type);
    out.u64(section.payload.size());
    out.u64(fnv1a64(section.payload));
    out.raw(section.payload);
  }
  return out.take();
}

err::Result<SnapshotView> SnapshotView::parse(
    std::span<const std::byte> bytes) {
  ByteReader in(bytes);
  const auto magic = in.raw(4);
  if (!in.ok() || std::memcmp(magic.data(), kMagic, 4) != 0) {
    return err::Status::data_loss("snapshot: bad magic (not a GEOS file)");
  }
  SnapshotView view;
  view.format_version_ = in.u32();
  if (!in.ok()) return err::Status::data_loss("snapshot: truncated header");
  if (view.format_version_ != kFormatVersion) {
    return err::Status::invalid_argument(
        "snapshot: format version " + std::to_string(view.format_version_) +
        " (this binary reads version " + std::to_string(kFormatVersion) + ")");
  }

  const std::uint64_t header_len = in.u64();
  const auto header_bytes = in.raw(static_cast<std::size_t>(header_len));
  const std::uint64_t header_checksum = in.u64();
  if (!in.ok()) return err::Status::data_loss("snapshot: truncated header");
  if (fnv1a64(header_bytes) != header_checksum) {
    return err::Status::data_loss("snapshot: header checksum mismatch");
  }
  ByteReader header(header_bytes);
  view.provenance_.tool_version = header.str();
  view.provenance_.compiler = header.str();
  view.provenance_.build_type = header.str();
  const std::uint32_t section_count = header.u32();
  if (!header.ok()) {
    return err::Status::data_loss("snapshot: malformed header block");
  }

  view.sections_.reserve(section_count);
  for (std::uint32_t i = 0; i < section_count; ++i) {
    Section section;
    section.type = in.u32();
    const std::uint64_t payload_len = in.u64();
    const std::uint64_t payload_checksum = in.u64();
    section.payload = in.raw(static_cast<std::size_t>(payload_len));
    if (!in.ok()) {
      return err::Status::data_loss("snapshot: truncated section '" +
                                    fourcc_name(section.type) + "' (" +
                                    std::to_string(i + 1) + " of " +
                                    std::to_string(section_count) + ")");
    }
    if (fnv1a64(section.payload) != payload_checksum) {
      return err::Status::data_loss("snapshot: checksum mismatch in section '" +
                                    fourcc_name(section.type) + "'");
    }
    view.sections_.push_back(section);
  }
  if (in.remaining() != 0) {
    return err::Status::data_loss("snapshot: " +
                                  std::to_string(in.remaining()) +
                                  " trailing byte(s) after last section");
  }
  return view;
}

const SnapshotView::Section* SnapshotView::find(
    std::uint32_t type) const noexcept {
  for (const Section& section : sections_) {
    if (section.type == type) return &section;
  }
  return nullptr;
}

std::vector<SnapshotView::Section> SnapshotView::find_all(
    std::uint32_t type) const {
  std::vector<Section> out;
  for (const Section& section : sections_) {
    if (section.type == type) out.push_back(section);
  }
  return out;
}

}  // namespace geonet::store
