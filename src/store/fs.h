#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "err/status.h"

namespace geonet::store {

/// Crash-safe artifact writing. Every results/*.dat file, run-report
/// JSON, markdown report and cache entry goes through this helper: the
/// payload is written to a sibling temp file and atomically renamed over
/// the destination only after every write succeeded. An interrupted or
/// faulted run therefore never leaves a truncated artifact — the
/// destination either has its old content or the complete new one.

/// Streams the payload via `writer`; `writer` returns false to abort
/// (e.g. on a mid-payload stream failure). On any failure the temp file
/// is removed, the destination is left untouched, the return is false
/// and `error` (when non-null) says why.
bool atomic_write(const std::string& path,
                  const std::function<bool(std::ostream&)>& writer,
                  std::string* error = nullptr);

bool atomic_write_text(const std::string& path, std::string_view content,
                       std::string* error = nullptr);

bool atomic_write_bytes(const std::string& path,
                        std::span<const std::byte> content,
                        std::string* error = nullptr);

/// Reads a whole file into memory. kNotFound when missing, kDataLoss on a
/// short or failed read.
err::Result<std::vector<std::byte>> read_file_bytes(const std::string& path);

/// Sanitizes a label into an artifact-safe filename stem: lowercase,
/// [a-z0-9_-] only. Runs of any other characters (spaces, commas,
/// slashes, '+') collapse into a single '_'; leading/trailing separators
/// are trimmed. "EdgeScape, Mercator US" -> "edgescape_mercator_us".
[[nodiscard]] std::string slug(std::string_view label);

}  // namespace geonet::store
