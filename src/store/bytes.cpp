#include "store/bytes.h"

#include <bit>

namespace geonet::store {

std::uint64_t fnv1a64(std::span<const std::byte> bytes,
                      std::uint64_t seed) noexcept {
  std::uint64_t h = seed;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string to_hex(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  raw(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

void ByteWriter::bytes(std::span<const std::byte> b) {
  u64(b.size());
  raw(b);
}

void ByteWriter::raw(std::span<const std::byte> b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

bool ByteReader::take(std::size_t n) noexcept {
  if (failed_ || n > remaining()) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() noexcept {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t ByteReader::u32() noexcept {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() noexcept {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double ByteReader::f64() noexcept { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t len = u64();
  if (!take(static_cast<std::size_t>(len))) return {};
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

std::span<const std::byte> ByteReader::bytes() {
  const std::uint64_t len = u64();
  return raw(static_cast<std::size_t>(len));
}

std::span<const std::byte> ByteReader::raw(std::size_t n) noexcept {
  if (!take(n)) return {};
  const auto view = bytes_.subspan(pos_, n);
  pos_ += n;
  return view;
}

void ByteReader::skip(std::size_t n) noexcept {
  if (take(n)) pos_ += n;
}

}  // namespace geonet::store
