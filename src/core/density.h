#pragma once

#include <string>
#include <vector>

#include "geo/region.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"
#include "stats/linear_fit.h"

namespace geonet::core {

/// One 75-arcmin patch with both people and infrastructure.
struct PatchPoint {
  double population = 0.0;
  double node_count = 0.0;
};

/// Section IV.B: the relationship between infrastructure density and
/// population density over equal-size patches of a region.
struct DensityAnalysis {
  std::vector<PatchPoint> patches;  ///< patches with population and nodes
  stats::LinearFit loglog_fit;      ///< log10(nodes) vs log10(population)
  std::size_t nodes_in_region = 0;
  std::size_t occupied_patches = 0; ///< patches with >= 1 node
  double patch_arcmin = 75.0;

  /// The paper's headline: fitted slope > 1 means superlinear scaling.
  [[nodiscard]] bool superlinear() const noexcept {
    return loglog_fit.slope > 1.0;
  }
};

/// Tallies nodes and people into patches of `patch_arcmin` (75 in the
/// paper) and fits the log-log relationship (Figure 2). Patches lacking
/// either people or nodes cannot appear on log axes and are excluded from
/// the fit, as in the paper's plots.
/// `index`, when non-null, must be built over the graph's node locations
/// in node-id order; the patch tally then skips out-of-region subtrees
/// wholesale with byte-identical counts (pinned by differential tests).
DensityAnalysis analyze_density(const net::AnnotatedGraph& graph,
                                const population::WorldPopulation& world,
                                const geo::Region& region,
                                double patch_arcmin = 75.0,
                                const geo::SpatialIndex* index = nullptr);

/// A row of Table III / Table IV.
struct RegionDensityRow {
  std::string name;
  double population_millions = 0.0;
  double online_millions = 0.0;  ///< 0 when unknown (Table IV)
  std::size_t nodes = 0;
  /// NaN when nodes == 0 (undefined, rendered "n/a" / JSON null).
  double people_per_node = 0.0;
  /// NaN when nodes == 0 (undefined, rendered "n/a" / JSON null).
  double online_per_node = 0.0;
};

/// Number of graph nodes mapped inside the region box (index-accelerated
/// when one is supplied; same contains() decisions either way).
std::size_t count_nodes_in(const net::AnnotatedGraph& graph,
                           const geo::Region& region,
                           const geo::SpatialIndex* index = nullptr);

/// Table III: people/online-users per interface across the world economic
/// regions, plus the World total row.
std::vector<RegionDensityRow> economic_region_table(
    const net::AnnotatedGraph& graph, const population::WorldPopulation& world,
    const geo::SpatialIndex* index = nullptr);

/// Table IV: the homogeneity test over Northern US / Southern US /
/// Central America, with populations read from the synthetic raster.
std::vector<RegionDensityRow> homogeneity_table(
    const net::AnnotatedGraph& graph, const population::WorldPopulation& world,
    const geo::SpatialIndex* index = nullptr);

}  // namespace geonet::core
