#include "core/study_store.h"

#include <cmath>
#include <limits>

#include "net/graph_io.h"

namespace geonet::core {

namespace {

/// Vector-of-doubles codec used by several phases.
void encode_doubles(store::ByteWriter& out, const std::vector<double>& xs) {
  out.u64(xs.size());
  for (const double x : xs) out.f64(x);
}

bool decode_doubles(store::ByteReader& in, std::vector<double>* out) {
  const std::uint64_t count = in.u64();
  if (count > in.remaining() / 8) return false;
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) out->push_back(in.f64());
  return in.ok();
}

err::Status truncated(const char* what) {
  return err::Status::data_loss(std::string("phase payload: truncated ") +
                                what);
}

}  // namespace

// --- Shared sub-codecs ----------------------------------------------

void encode_fit(store::ByteWriter& out, const stats::LinearFit& fit) {
  out.f64(fit.slope);
  out.f64(fit.intercept);
  out.f64(fit.r_squared);
  out.u64(fit.n);
}

stats::LinearFit decode_fit(store::ByteReader& in) {
  stats::LinearFit fit;
  fit.slope = in.f64();
  fit.intercept = in.f64();
  fit.r_squared = in.f64();
  fit.n = static_cast<std::size_t>(in.u64());
  return fit;
}

void encode_summary(store::ByteWriter& out, const stats::Summary& summary) {
  out.u64(summary.n);
  out.f64(summary.mean);
  out.f64(summary.stddev);
  out.f64(summary.min);
  out.f64(summary.max);
  out.f64(summary.median);
}

stats::Summary decode_summary(store::ByteReader& in) {
  stats::Summary summary;
  summary.n = static_cast<std::size_t>(in.u64());
  summary.mean = in.f64();
  summary.stddev = in.f64();
  summary.min = in.f64();
  summary.max = in.f64();
  summary.median = in.f64();
  return summary;
}

void encode_histogram(store::ByteWriter& out, const stats::Histogram& hist) {
  out.f64(hist.lo());
  out.f64(hist.hi());
  out.u64(hist.bin_count());
  for (const double count : hist.counts()) out.f64(count);
  out.f64(hist.underflow());
  out.f64(hist.overflow());
}

err::Result<stats::Histogram> decode_histogram(store::ByteReader& in) {
  const double lo = in.f64();
  const double hi = in.f64();
  const std::uint64_t bins = in.u64();
  // Histogram's constructor requires a finite non-empty range; a payload
  // violating that is damage, not a histogram.
  if (!in.ok() || !std::isfinite(lo) || !std::isfinite(hi) || hi <= lo ||
      bins == 0 || bins > in.remaining() / 8) {
    return err::Status::data_loss("phase payload: malformed histogram header");
  }
  stats::Histogram hist(lo, hi, static_cast<std::size_t>(bins));
  for (std::uint64_t b = 0; b < bins; ++b) {
    hist.add_to_bin(static_cast<std::size_t>(b), in.f64());
  }
  const double underflow = in.f64();
  const double overflow = in.f64();
  if (!in.ok()) return truncated("histogram");
  // No direct setters for the out-of-range tallies; route them through
  // add() with values just outside the range.
  if (underflow != 0.0) {
    hist.add(std::nextafter(lo, -std::numeric_limits<double>::max()),
             underflow);
  }
  if (overflow != 0.0) hist.add(hi, overflow);
  return hist;
}

// --- Phase-result codecs --------------------------------------------

void encode_density(store::ByteWriter& out, const DensityAnalysis& density) {
  out.u64(density.patches.size());
  for (const PatchPoint& patch : density.patches) {
    out.f64(patch.population);
    out.f64(patch.node_count);
  }
  encode_fit(out, density.loglog_fit);
  out.u64(density.nodes_in_region);
  out.u64(density.occupied_patches);
  out.f64(density.patch_arcmin);
}

err::Result<DensityAnalysis> decode_density(store::ByteReader& in) {
  DensityAnalysis density;
  const std::uint64_t patches = in.u64();
  if (patches > in.remaining() / 16) return truncated("density patches");
  density.patches.reserve(static_cast<std::size_t>(patches));
  for (std::uint64_t i = 0; i < patches; ++i) {
    PatchPoint patch;
    patch.population = in.f64();
    patch.node_count = in.f64();
    density.patches.push_back(patch);
  }
  density.loglog_fit = decode_fit(in);
  density.nodes_in_region = static_cast<std::size_t>(in.u64());
  density.occupied_patches = static_cast<std::size_t>(in.u64());
  density.patch_arcmin = in.f64();
  if (!in.ok()) return truncated("density");
  return density;
}

void encode_distance_pref(store::ByteWriter& out,
                          const DistancePreference& pref) {
  encode_histogram(out, pref.link_hist);
  encode_histogram(out, pref.pair_hist);
  encode_doubles(out, pref.f);
  out.f64(pref.bin_miles);
  out.u64(pref.nodes);
  out.u64(pref.links);
}

err::Result<DistancePreference> decode_distance_pref(store::ByteReader& in) {
  DistancePreference pref;
  auto link_hist = decode_histogram(in);
  if (!link_hist.is_ok()) return link_hist.status();
  pref.link_hist = std::move(link_hist).value();
  auto pair_hist = decode_histogram(in);
  if (!pair_hist.is_ok()) return pair_hist.status();
  pref.pair_hist = std::move(pair_hist).value();
  if (!decode_doubles(in, &pref.f)) return truncated("distance-pref ratios");
  pref.bin_miles = in.f64();
  pref.nodes = static_cast<std::size_t>(in.u64());
  pref.links = static_cast<std::size_t>(in.u64());
  if (!in.ok()) return truncated("distance-pref");
  return pref;
}

void encode_waxman(store::ByteWriter& out, const WaxmanCharacterisation& wax) {
  encode_fit(out, wax.semilog_fit);
  out.f64(wax.lambda_miles);
  out.f64(wax.beta);
  out.f64(wax.small_d_cut_miles);
  out.f64(wax.flat_level);
  encode_fit(out, wax.cumulative_fit);
  out.f64(wax.sensitivity_limit_miles);
  out.f64(wax.fraction_links_below_limit);
}

err::Result<WaxmanCharacterisation> decode_waxman(store::ByteReader& in) {
  WaxmanCharacterisation wax;
  wax.semilog_fit = decode_fit(in);
  wax.lambda_miles = in.f64();
  wax.beta = in.f64();
  wax.small_d_cut_miles = in.f64();
  wax.flat_level = in.f64();
  wax.cumulative_fit = decode_fit(in);
  wax.sensitivity_limit_miles = in.f64();
  wax.fraction_links_below_limit = in.f64();
  if (!in.ok()) return truncated("waxman fit");
  return wax;
}

void encode_link_domains(store::ByteWriter& out, const LinkDomainStats& links) {
  out.str(links.scope);
  out.u64(links.interdomain_count);
  out.u64(links.intradomain_count);
  out.f64(links.interdomain_mean_miles);
  out.f64(links.intradomain_mean_miles);
}

err::Result<LinkDomainStats> decode_link_domains(store::ByteReader& in) {
  LinkDomainStats links;
  links.scope = in.str();
  links.interdomain_count = static_cast<std::size_t>(in.u64());
  links.intradomain_count = static_cast<std::size_t>(in.u64());
  links.interdomain_mean_miles = in.f64();
  links.intradomain_mean_miles = in.f64();
  if (!in.ok()) return truncated("link domains");
  return links;
}

void encode_link_lengths(store::ByteWriter& out,
                         const LinkLengthAnalysis& lengths) {
  encode_doubles(out, lengths.lengths_miles);
  encode_summary(out, lengths.summary);
  out.f64(lengths.fraction_zero);
  encode_fit(out, lengths.tail);
}

err::Result<LinkLengthAnalysis> decode_link_lengths(store::ByteReader& in) {
  LinkLengthAnalysis lengths;
  if (!decode_doubles(in, &lengths.lengths_miles)) {
    return truncated("link lengths");
  }
  lengths.summary = decode_summary(in);
  lengths.fraction_zero = in.f64();
  lengths.tail = decode_fit(in);
  if (!in.ok()) return truncated("link-length analysis");
  return lengths;
}

void encode_as_sizes(store::ByteWriter& out, const AsSizeAnalysis& as_sizes) {
  out.u64(as_sizes.records.size());
  for (const AsRecord& record : as_sizes.records) {
    out.u32(record.asn);
    out.u64(record.node_count);
    out.u64(record.location_count);
    out.u64(record.degree);
  }
  out.f64(as_sizes.corr_nodes_locations);
  out.f64(as_sizes.corr_nodes_degree);
  out.f64(as_sizes.corr_locations_degree);
  encode_fit(out, as_sizes.tail_nodes);
  encode_fit(out, as_sizes.tail_locations);
  encode_fit(out, as_sizes.tail_degree);
}

err::Result<AsSizeAnalysis> decode_as_sizes(store::ByteReader& in) {
  AsSizeAnalysis as_sizes;
  const std::uint64_t records = in.u64();
  if (records > in.remaining() / 28) return truncated("AS records");
  as_sizes.records.reserve(static_cast<std::size_t>(records));
  for (std::uint64_t i = 0; i < records; ++i) {
    AsRecord record;
    record.asn = in.u32();
    record.node_count = static_cast<std::size_t>(in.u64());
    record.location_count = static_cast<std::size_t>(in.u64());
    record.degree = static_cast<std::size_t>(in.u64());
    as_sizes.records.push_back(record);
  }
  as_sizes.corr_nodes_locations = in.f64();
  as_sizes.corr_nodes_degree = in.f64();
  as_sizes.corr_locations_degree = in.f64();
  as_sizes.tail_nodes = decode_fit(in);
  as_sizes.tail_locations = decode_fit(in);
  as_sizes.tail_degree = decode_fit(in);
  if (!in.ok()) return truncated("AS size analysis");
  return as_sizes;
}

void encode_hulls(store::ByteWriter& out, const HullAnalysis& hulls) {
  out.u64(hulls.records.size());
  for (const AsHullRecord& record : hulls.records) {
    out.u32(record.asn);
    out.f64(record.hull_area_sq_miles);
    out.u64(record.node_count);
    out.u64(record.location_count);
    out.u64(record.degree);
  }
  out.f64(hulls.zero_area_fraction);
  out.f64(hulls.thresholds.by_degree);
  out.f64(hulls.thresholds.by_node_count);
  out.f64(hulls.thresholds.by_locations);
  out.f64(hulls.thresholds.dispersed_area_sq_miles);
}

err::Result<HullAnalysis> decode_hulls(store::ByteReader& in) {
  HullAnalysis hulls;
  const std::uint64_t records = in.u64();
  if (records > in.remaining() / 36) return truncated("hull records");
  hulls.records.reserve(static_cast<std::size_t>(records));
  for (std::uint64_t i = 0; i < records; ++i) {
    AsHullRecord record;
    record.asn = in.u32();
    record.hull_area_sq_miles = in.f64();
    record.node_count = static_cast<std::size_t>(in.u64());
    record.location_count = static_cast<std::size_t>(in.u64());
    record.degree = static_cast<std::size_t>(in.u64());
    hulls.records.push_back(record);
  }
  hulls.zero_area_fraction = in.f64();
  hulls.thresholds.by_degree = in.f64();
  hulls.thresholds.by_node_count = in.f64();
  hulls.thresholds.by_locations = in.f64();
  hulls.thresholds.dispersed_area_sq_miles = in.f64();
  if (!in.ok()) return truncated("hull analysis");
  return hulls;
}

void encode_fractal(store::ByteWriter& out, const geo::FractalDimension& dim) {
  out.f64(dim.dimension);
  encode_fit(out, dim.fit);
  out.u64(dim.sweep.size());
  for (const geo::BoxCount& scale : dim.sweep) {
    out.f64(scale.box_arcmin);
    out.u64(scale.occupied_boxes);
  }
}

err::Result<geo::FractalDimension> decode_fractal(store::ByteReader& in) {
  geo::FractalDimension dim;
  dim.dimension = in.f64();
  dim.fit = decode_fit(in);
  const std::uint64_t scales = in.u64();
  if (scales > in.remaining() / 16) return truncated("box-count sweep");
  dim.sweep.reserve(static_cast<std::size_t>(scales));
  for (std::uint64_t i = 0; i < scales; ++i) {
    geo::BoxCount scale;
    scale.box_arcmin = in.f64();
    scale.occupied_boxes = static_cast<std::size_t>(in.u64());
    dim.sweep.push_back(scale);
  }
  if (!in.ok()) return truncated("fractal dimension");
  return dim;
}

namespace {

void encode_table(store::ByteWriter& out,
                  const std::vector<RegionDensityRow>& rows) {
  out.u64(rows.size());
  for (const RegionDensityRow& row : rows) {
    out.str(row.name);
    out.f64(row.population_millions);
    out.f64(row.online_millions);
    out.u64(row.nodes);
    out.f64(row.people_per_node);
    out.f64(row.online_per_node);
  }
}

bool decode_table(store::ByteReader& in, std::vector<RegionDensityRow>* out) {
  const std::uint64_t rows = in.u64();
  // Each row is at least 48 bytes (name length prefix + 5 numbers).
  if (rows > in.remaining() / 48) return false;
  out->reserve(static_cast<std::size_t>(rows));
  for (std::uint64_t i = 0; i < rows && in.ok(); ++i) {
    RegionDensityRow row;
    row.name = in.str();
    row.population_millions = in.f64();
    row.online_millions = in.f64();
    row.nodes = static_cast<std::size_t>(in.u64());
    row.people_per_node = in.f64();
    row.online_per_node = in.f64();
    out->push_back(std::move(row));
  }
  return in.ok();
}

}  // namespace

void encode_region_tables(store::ByteWriter& out,
                          const std::vector<RegionDensityRow>& economic,
                          const std::vector<RegionDensityRow>& homogeneity) {
  encode_table(out, economic);
  encode_table(out, homogeneity);
}

err::Result<std::pair<std::vector<RegionDensityRow>,
                      std::vector<RegionDensityRow>>>
decode_region_tables(store::ByteReader& in) {
  std::pair<std::vector<RegionDensityRow>, std::vector<RegionDensityRow>> out;
  if (!decode_table(in, &out.first) || !decode_table(in, &out.second)) {
    return truncated("region tables");
  }
  return out;
}

// --- Cache keys -----------------------------------------------------

store::Digest128 world_digest(const population::WorldPopulation& world) {
  store::Fingerprint fp;
  fp.add("profiles", world.profiles().size());
  for (std::size_t i = 0; i < world.grids().size(); ++i) {
    const population::PopulationGrid& grid = world.grids()[i];
    if (i < world.profiles().size()) {
      fp.add("profile.name", world.profiles()[i].name);
    }
    const geo::Region& region = grid.grid().region();
    fp.add("grid.south", region.south_deg);
    fp.add("grid.north", region.north_deg);
    fp.add("grid.west", region.west_deg);
    fp.add("grid.east", region.east_deg);
    fp.add("grid.rows", grid.grid().rows());
    fp.add("grid.cols", grid.grid().cols());
    fp.add("grid.cell_arcmin", grid.grid().cell_arcmin());
    fp.add("grid.total", grid.total_population());
    fp.add("grid.cities", grid.cities().size());
    for (const population::City& city : grid.cities()) {
      fp.add("city.lat", city.center.lat_deg);
      fp.add("city.lon", city.center.lon_deg);
      fp.add("city.pop", city.population);
    }
    // A strided sample of the raster itself catches any edit the summary
    // stats above might miss (e.g. people moved between cells).
    const std::vector<double>& cells = grid.cell_populations();
    const std::size_t stride = cells.empty() ? 1 : 1 + cells.size() / 256;
    for (std::size_t c = 0; c < cells.size(); c += stride) {
      fp.add("cell", cells[c]);
    }
  }
  return fp.digest();
}

store::Fingerprint study_fingerprint(const net::AnnotatedGraph& graph,
                                     const population::WorldPopulation& world,
                                     const StudyOptions& options) {
  store::Fingerprint fp = store::Fingerprint::with_provenance();
  fp.add("op", "run_study");
  fp.add("graph", net::graph_digest(graph));
  fp.add("world", world_digest(world));
  fp.add("patch_arcmin", options.patch_arcmin);
  fp.add("distance.bins", options.distance.bins);
  fp.add("distance.domain_filter",
         static_cast<std::uint32_t>(options.distance.domain_filter));
  fp.add("distance.bin_miles", options.distance.bin_miles);
  fp.add("distance.method",
         static_cast<std::uint32_t>(options.distance.method));
  fp.add("distance.grid_cell_arcmin", options.distance.grid_cell_arcmin);
  fp.add("distance.max_grid_cells", options.distance.max_grid_cells);
  fp.add("distance.sample_pairs", options.distance.sample_pairs);
  fp.add("distance.seed", options.distance.seed);
  fp.add("compute_fractal_dimension", options.compute_fractal_dimension);
  fp.add("regions", options.regions.size());
  for (const geo::Region& region : options.regions) {
    fp.add("region.name", region.name);
    fp.add("region.south", region.south_deg);
    fp.add("region.north", region.north_deg);
    fp.add("region.west", region.west_deg);
    fp.add("region.east", region.east_deg);
  }
  fp.add("max_errors", options.max_errors);
  fp.add("inject_phase_failures", options.inject_phase_failures.size());
  for (const std::string& label : options.inject_phase_failures) {
    fp.add("inject", label);
  }
  // Deliberately excluded: cache (it IS the cache), use_spatial_index and
  // spatial_index. The index only changes how proximity phases compute,
  // never their bytes (pinned by the differential suite), so indexed and
  // brute-force runs must share cache entries.
  return fp;
}

}  // namespace geonet::core
