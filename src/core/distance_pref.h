#pragma once

#include <cstdint>
#include <vector>

#include "geo/region.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"
#include "stats/histogram.h"

namespace geonet::core {

/// How the node-pair distance histogram (the denominator of equation (1))
/// is computed.
///
/// * kExact: all O(n^2) pairs; exact, only viable for small n.
/// * kGrid: nodes are tallied into fine grid cells and cell pairs counted
///   at centre-to-centre distance. Error is bounded by the cell diagonal,
///   far below the paper's bin sizes (11-35 mi); cost is O(c^2) in
///   non-empty cells, not O(n^2) in nodes.
/// * kSampled: Monte Carlo over random pairs, scaled to C(n,2).
enum class PairCountMethod : std::uint8_t { kExact, kGrid, kSampled };

/// Restricts which links feed the numerator of f(d); the denominator
/// (node pairs) is unchanged, so f_all = f_intra + f_inter bin by bin.
enum class DomainFilter : std::uint8_t { kAll, kIntradomainOnly, kInterdomainOnly };

struct DistancePrefOptions {
  std::size_t bins = 100;          ///< the paper uses 100 bins per region
  DomainFilter domain_filter = DomainFilter::kAll;
  double bin_miles = 0.0;          ///< 0 = paper value for known regions,
                                   ///<     else diagonal/bins
  PairCountMethod method = PairCountMethod::kGrid;
  double grid_cell_arcmin = 7.5;   ///< kGrid base resolution
  /// kGrid coarsens (doubling the cell) while more cells than this are
  /// occupied and the cell diagonal stays below 3/4 of the bin width.
  std::size_t max_grid_cells = 6000;
  std::size_t sample_pairs = 2'000'000;  ///< kSampled draws
  std::uint64_t seed = 1729;       ///< kSampled determinism
};

/// Section V: the empirical distance preference function
///   f(d) = #links with length in [d, d+b) / #node pairs in [d, d+b).
struct DistancePreference {
  stats::Histogram link_hist;   ///< numerator of (1)
  stats::Histogram pair_hist;   ///< denominator of (1)
  std::vector<double> f;        ///< the ratio, one value per bin
  double bin_miles = 0.0;
  std::size_t nodes = 0;        ///< nodes located in the region
  std::size_t links = 0;        ///< links with both ends in the region

  /// Cumulated preference function F(d) = sum_{d' < d} f(d') (Figure 6).
  [[nodiscard]] std::vector<double> cumulated() const;

  /// Centre of bin b in miles.
  [[nodiscard]] double bin_center(std::size_t b) const noexcept {
    return link_hist.bin_center(b);
  }

  /// Fraction of links with length below `limit_miles` (Table V).
  [[nodiscard]] double fraction_links_below(double limit_miles) const;
};

/// The bin widths the paper quotes for Figure 4 (35 / 15 / 11 mi); falls
/// back to diagonal/bins for other regions.
double paper_bin_miles(const geo::Region& region, std::size_t bins = 100);

/// Estimates the distance preference function for nodes/links of the graph
/// that fall inside `region`.
///
/// `graph_index` is an optional spatial index over the graph's node
/// locations (in node-id order). When present, region membership and pair
/// counting route through the index; the results are byte-identical to
/// the brute-force path — the differential tests pin that — so the index
/// never participates in cache fingerprints.
DistancePreference distance_preference(
    const net::AnnotatedGraph& graph, const geo::Region& region,
    const DistancePrefOptions& options = {},
    const geo::SpatialIndex* graph_index = nullptr);

/// The pair-distance histogram alone (exposed for testing and the
/// method-comparison microbenchmarks). `points_index`, when non-null,
/// must be built over exactly `points`; kExact then prunes far pairs
/// straight into the overflow bucket (they all land at or above `hi`)
/// and kGrid tallies cells through the index. Both remain byte-identical
/// to the unindexed path.
stats::Histogram pair_distance_histogram(
    const std::vector<geo::GeoPoint>& points, double lo, double hi,
    std::size_t bins, const geo::Region& region,
    const DistancePrefOptions& options,
    const geo::SpatialIndex* points_index = nullptr);

}  // namespace geonet::core
