#include "core/validate.h"

#include <cstdio>

#include "core/as_analysis.h"
#include "core/density.h"
#include "core/hull_analysis.h"
#include "core/link_domains.h"
#include "core/waxman_fit.h"
#include "stats/ccdf.h"

namespace geonet::core {

RealismSignature measure_signature(const net::AnnotatedGraph& graph,
                                   const population::WorldPopulation& world,
                                   const geo::Region& region) {
  RealismSignature sig;
  sig.nodes = graph.node_count();
  sig.links = graph.edge_count();

  const DensityAnalysis density = analyze_density(graph, world, region);
  sig.density_slope = density.loglog_fit.slope;
  sig.density_r2 = density.loglog_fit.r_squared;

  const WaxmanCharacterisation waxman = characterize_region(graph, region);
  sig.lambda_miles = waxman.lambda_miles;
  sig.fraction_distance_sensitive = waxman.fraction_links_below_limit;

  const auto degrees = graph.degrees();
  std::vector<double> degree_values(degrees.begin(), degrees.end());
  sig.degree_tail_slope = stats::fit_ccdf_tail(degree_values, 0.3).slope;

  const AsSizeAnalysis as_sizes = analyze_as_sizes(graph);
  sig.as_count = as_sizes.records.size();
  sig.corr_nodes_locations = as_sizes.corr_nodes_locations;
  sig.intradomain_fraction =
      analyze_link_domains(graph).intradomain_fraction();
  sig.zero_hull_fraction = analyze_hulls(graph).zero_area_fraction;
  return sig;
}

RealismReport evaluate_realism(const RealismSignature& signature) {
  RealismReport report;
  report.signature = signature;
  const bool has_as_structure = signature.as_count >= 10;

  const auto check = [&](const char* criterion, bool pass, double value,
                         const char* expectation) {
    report.checks.push_back({criterion, pass, value, expectation});
    if (pass) ++report.passed;
  };

  check("superlinear density (Fig 2)", signature.density_slope > 1.0,
        signature.density_slope, "slope > 1 (paper: 1.2-1.75)");
  check("density relationship strength",
        signature.density_r2 > 0.4, signature.density_r2, "r^2 > 0.4");
  check("mile-scale distance decay (Fig 5)",
        signature.lambda_miles > 20.0 && signature.lambda_miles < 600.0,
        signature.lambda_miles, "lambda in [20, 600] mi (paper: 80-145)");
  check("distance-sensitive majority (Table V)",
        signature.fraction_distance_sensitive > 0.6 &&
            signature.fraction_distance_sensitive <= 1.0,
        signature.fraction_distance_sensitive,
        "fraction in (0.6, 1] (paper: 0.75-0.95)");
  check("heavy degree tail (Fig 7c)", signature.degree_tail_slope < -1.0,
        signature.degree_tail_slope, "log-log CCDF slope < -1");
  if (has_as_structure) {
    check("intradomain majority (Table VI)",
          signature.intradomain_fraction > 0.7,
          signature.intradomain_fraction, "fraction > 0.7 (paper: >0.83)");
    check("size-location correlation (Fig 8a)",
          signature.corr_nodes_locations > 0.5,
          signature.corr_nodes_locations, "log-log r > 0.5");
    check("zero-extent AS point mass (Fig 9)",
          signature.zero_hull_fraction > 0.2,
          signature.zero_hull_fraction, "fraction > 0.2 (paper: ~0.8)");
  }
  return report;
}

RealismReport check_realism(const net::AnnotatedGraph& graph,
                            const population::WorldPopulation& world,
                            const geo::Region& region) {
  return evaluate_realism(measure_signature(graph, world, region));
}

std::string to_string(const RealismReport& report) {
  std::string out;
  char line[160];
  for (const auto& check : report.checks) {
    std::snprintf(line, sizeof(line), "  [%s] %-38s %8.2f  (%s)\n",
                  check.pass ? "PASS" : "FAIL", check.criterion.c_str(),
                  check.value, check.expectation.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %zu/%zu criteria passed\n",
                report.passed, report.checks.size());
  out += line;
  return out;
}

}  // namespace geonet::core
