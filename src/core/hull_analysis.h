#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/as_analysis.h"
#include "geo/convex_hull.h"
#include "geo/region.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"

namespace geonet::core {

/// Per-AS geographic extent (Section VI.B): the area of the convex hull of
/// the AS's node locations after Albers equal-area projection.
struct AsHullRecord {
  std::uint32_t asn = 0;
  double hull_area_sq_miles = 0.0;
  std::size_t node_count = 0;
  std::size_t location_count = 0;
  std::size_t degree = 0;
};

/// The size threshold above which every AS is maximally dispersed
/// (Figure 10's second regime), per size measure.
struct DispersalThresholds {
  double by_degree = 0.0;       ///< the paper finds ~100
  double by_node_count = 0.0;   ///< the paper finds ~1000 interfaces
  double by_locations = 0.0;    ///< the paper finds ~100
  /// Hull area above which an AS counts as "dispersed" for the detection.
  double dispersed_area_sq_miles = 0.0;
};

struct HullAnalysis {
  std::vector<AsHullRecord> records;
  /// Fraction of ASes with one or two locations, hence zero hull area
  /// (~80% in Figure 9).
  double zero_area_fraction = 0.0;
  DispersalThresholds thresholds;
};

struct HullOptions {
  /// Restrict to nodes inside this box (Figure 9b/9c); nullopt = world.
  std::optional<geo::Region> restrict_to;
  double location_quantum_deg = 0.01;
  /// "Dispersed" = hull at least this fraction of the 99th-percentile
  /// positive hull area.
  double dispersed_fraction = 0.1;
};

/// Computes per-AS convex hulls and the two-regime dispersal thresholds.
/// `index`, when non-null, must be built over the graph's node locations
/// in node-id order; it answers the restrict_to membership test with
/// out-of-region subtrees skipped wholesale (identical decisions).
HullAnalysis analyze_hulls(const net::AnnotatedGraph& graph,
                           const HullOptions& options = {},
                           const geo::SpatialIndex* index = nullptr);

}  // namespace geonet::core
