#include "core/distance_pref.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "exec/parallel.h"
#include "geo/distance.h"
#include "geo/grid.h"
#include "stats/rng.h"

namespace geonet::core {

std::vector<double> DistancePreference::cumulated() const {
  std::vector<double> out(f.size(), 0.0);
  double running = 0.0;
  for (std::size_t b = 0; b < f.size(); ++b) {
    running += f[b];
    out[b] = running;
  }
  return out;
}

double DistancePreference::fraction_links_below(double limit_miles) const {
  if (links == 0) return 0.0;
  double below = 0.0;
  double total = 0.0;
  for (std::size_t b = 0; b < link_hist.bin_count(); ++b) {
    total += link_hist.count(b);
    if (link_hist.bin_center(b) < limit_miles) below += link_hist.count(b);
  }
  // Both out-of-range masses belong in the denominator: a link longer
  // than the histogram span is still a link. Underflow mass (x < lo) is
  // known to fall below any limit past lo; overflow mass (x >= hi) below
  // none at or under hi.
  total += link_hist.underflow() + link_hist.overflow();
  if (limit_miles > link_hist.lo()) below += link_hist.underflow();
  return total > 0.0 ? below / total : 0.0;
}

double paper_bin_miles(const geo::Region& region, std::size_t bins) {
  if (region.name == "US") return 35.0;
  if (region.name == "Europe") return 15.0;
  if (region.name == "Japan") return 11.0;
  return region.diagonal_miles() / static_cast<double>(bins);
}

namespace {

stats::Histogram exact_pair_histogram(const std::vector<geo::GeoPoint>& points,
                                      double lo, double hi, std::size_t bins) {
  // O(n²) great-circle sweep, chunked by row range. Pair weights are unit,
  // so per-chunk sums are exact integers and the chunk-ordered merge is
  // byte-identical to the serial loop at any thread count.
  const std::size_t n = points.size();
  exec::RegionOptions region;
  region.name = "core/pairs_exact";
  region.grain = 64;
  return exec::parallel_reduce<stats::Histogram>(
      n, region, [&] { return stats::Histogram(lo, hi, bins); },
      [&](stats::Histogram& hist, std::size_t row_begin, std::size_t row_end,
          std::size_t) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          for (std::size_t j = i + 1; j < n; ++j) {
            hist.add(geo::great_circle_miles(points[i], points[j]));
          }
        }
      },
      [](stats::Histogram& into, stats::Histogram&& from) {
        into.merge(from);
      });
}

stats::Histogram indexed_pair_histogram(const std::vector<geo::GeoPoint>& points,
                                        double lo, double hi, std::size_t bins,
                                        const geo::SpatialIndex& index) {
  // Index-pruned exact sweep: leaves are the unit of work, and every pair
  // with one end in the leaf and the other at a later sorted position is
  // either measured or pruned wholesale. A pruned pair's distance provably
  // exceeds `hi` (the bbox lower bound is conservative), so the whole
  // pruned mass books into the overflow bucket — integer adds in either
  // order, hence byte-identical to the brute-force enumeration above.
  struct Acc {
    stats::Histogram hist;
    std::uint64_t pruned = 0;
  };
  exec::RegionOptions region;
  region.name = "core/pairs_index";
  region.grain = 1;
  Acc acc = exec::parallel_reduce<Acc>(
      index.leaf_count(), region,
      [&] { return Acc{stats::Histogram(lo, hi, bins), 0}; },
      [&](Acc& chunk, std::size_t leaf_begin, std::size_t leaf_end,
          std::size_t) {
        for (std::size_t leaf = leaf_begin; leaf < leaf_end; ++leaf) {
          chunk.pruned += index.visit_leaf_pairs(
              leaf, hi, [&](std::uint32_t a, std::uint32_t b) {
                chunk.hist.add(geo::great_circle_miles(points[a], points[b]));
              });
        }
      },
      [](Acc& into, Acc&& from) {
        into.hist.merge(from.hist);
        into.pruned += from.pruned;
      });
  if (acc.pruned > 0) {
    acc.hist.add(hi, static_cast<double>(acc.pruned));
  }
  return std::move(acc.hist);
}

stats::Histogram sampled_pair_histogram(const std::vector<geo::GeoPoint>& points,
                                        double lo, double hi, std::size_t bins,
                                        std::size_t samples,
                                        std::uint64_t seed) {
  stats::Histogram hist(lo, hi, bins);
  const std::size_t n = points.size();
  if (n < 2) return hist;
  const double total_pairs = 0.5 * static_cast<double>(n) *
                             static_cast<double>(n - 1);
  const double weight = total_pairs / static_cast<double>(samples);
  stats::Rng rng(seed);
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t i = rng.uniform_index(n);
    std::size_t j = rng.uniform_index(n - 1);
    if (j >= i) ++j;
    hist.add(geo::great_circle_miles(points[i], points[j]), weight);
  }
  return hist;
}

stats::Histogram grid_pair_histogram(const std::vector<geo::GeoPoint>& points,
                                     double lo, double hi, std::size_t bins,
                                     const geo::Region& region,
                                     double cell_arcmin,
                                     std::size_t max_cells,
                                     const geo::SpatialIndex* index) {
  struct Cell {
    geo::GeoPoint center;
    double count;
  };
  std::vector<Cell> cells;

  // Tally nodes into cells, adaptively coarsening while the point set is
  // too diffuse: cost is quadratic in non-empty cells, and the centre
  // approximation stays sound as long as the cell diagonal is well below
  // the bin width.
  const double bin_width = (hi - lo) / static_cast<double>(bins);
  for (double arcmin = cell_arcmin;; arcmin *= 2.0) {
    const geo::Grid grid(region, arcmin);
    // The index-accelerated tally skips out-of-region subtrees wholesale
    // and produces identical counts (same per-point cell_of decisions).
    const std::vector<double> counts =
        index != nullptr ? index->tally(grid) : grid.tally(points);
    cells.clear();
    for (std::size_t flat = 0; flat < counts.size(); ++flat) {
      if (counts[flat] > 0.0) {
        cells.push_back(
            {grid.cell_center(grid.unflatten(flat)), counts[flat]});
      }
    }
    if (cells.size() <= max_cells) break;
    const geo::Grid next(region, arcmin * 2.0);
    if (next.max_cell_diagonal_miles() > 0.75 * bin_width) break;
  }

  // Cell-pair sweep, parallelised like the exact counter. Weights are
  // products of integer-valued cell counts, so merge order cannot change
  // the sums: determinism at any thread count comes for free.
  exec::RegionOptions region_options;
  region_options.name = "core/pairs_grid";
  region_options.grain = 32;
  return exec::parallel_reduce<stats::Histogram>(
      cells.size(), region_options,
      [&] { return stats::Histogram(lo, hi, bins); },
      [&](stats::Histogram& h, std::size_t row_begin, std::size_t row_end,
          std::size_t) {
        for (std::size_t i = row_begin; i < row_end; ++i) {
          // Same-cell pairs: distance below the cell diagonal, booked at ~0.
          h.add(0.0, 0.5 * cells[i].count * (cells[i].count - 1.0));
          for (std::size_t j = i + 1; j < cells.size(); ++j) {
            h.add(geo::great_circle_miles(cells[i].center, cells[j].center),
                  cells[i].count * cells[j].count);
          }
        }
      },
      [](stats::Histogram& into, stats::Histogram&& from) {
        into.merge(from);
      });
}

}  // namespace

stats::Histogram pair_distance_histogram(
    const std::vector<geo::GeoPoint>& points, double lo, double hi,
    std::size_t bins, const geo::Region& region,
    const DistancePrefOptions& options,
    const geo::SpatialIndex* points_index) {
  switch (options.method) {
    case PairCountMethod::kExact:
      return points_index != nullptr
                 ? indexed_pair_histogram(points, lo, hi, bins, *points_index)
                 : exact_pair_histogram(points, lo, hi, bins);
    case PairCountMethod::kSampled:
      return sampled_pair_histogram(points, lo, hi, bins, options.sample_pairs,
                                    options.seed);
    case PairCountMethod::kGrid:
    default:
      return grid_pair_histogram(points, lo, hi, bins, region,
                                 options.grid_cell_arcmin,
                                 options.max_grid_cells, points_index);
  }
}

DistancePreference distance_preference(const net::AnnotatedGraph& graph,
                                       const geo::Region& region,
                                       const DistancePrefOptions& options,
                                       const geo::SpatialIndex* graph_index) {
  const std::size_t bins = std::max<std::size_t>(1, options.bins);
  const double bin_miles = options.bin_miles > 0.0
                               ? options.bin_miles
                               : paper_bin_miles(region, bins);
  const double hi = bin_miles * static_cast<double>(bins);

  // Nodes located in the region, with a dense reindexing for edges. The
  // index answers membership through the identical contains() comparisons
  // with out-of-region subtrees skipped in bulk.
  std::vector<std::uint8_t> mask;
  if (graph_index != nullptr) mask = graph_index->region_mask(region);
  std::vector<geo::GeoPoint> points;
  std::vector<std::int64_t> index_of(graph.node_count(), -1);
  for (std::uint32_t id = 0; id < graph.node_count(); ++id) {
    const auto& node = graph.node(id);
    const bool inside = graph_index != nullptr
                            ? mask[id] != 0
                            : region.contains(node.location);
    if (inside) {
      index_of[id] = static_cast<std::int64_t>(points.size());
      points.push_back(node.location);
    }
  }

  DistancePreference out{
      stats::Histogram(0.0, hi, bins), stats::Histogram(0.0, hi, bins),
      {},   bin_miles,
      points.size(), 0};

  for (const auto& edge : graph.edges()) {
    if (index_of[edge.a] < 0 || index_of[edge.b] < 0) continue;
    if (options.domain_filter != DomainFilter::kAll) {
      const std::uint32_t as_a = graph.node(edge.a).asn;
      const std::uint32_t as_b = graph.node(edge.b).asn;
      if (as_a == 0 || as_b == 0) continue;  // the paper's separate AS
      const bool intra = as_a == as_b;
      if (intra != (options.domain_filter == DomainFilter::kIntradomainOnly)) {
        continue;
      }
    }
    ++out.links;
    out.link_hist.add(geo::great_circle_miles(graph.node(edge.a).location,
                                              graph.node(edge.b).location));
  }

  // With an index over the graph, pair counting gets its own index over
  // the region's point subset (cheap relative to the pair sweep it
  // accelerates). kSampled draws random pairs and gains nothing.
  std::optional<geo::SpatialIndex> subset_index;
  if (graph_index != nullptr && options.method != PairCountMethod::kSampled) {
    subset_index = geo::SpatialIndex::build(points);
  }
  out.pair_hist =
      pair_distance_histogram(points, 0.0, hi, bins, region, options,
                              subset_index ? &*subset_index : nullptr);
  out.f = out.link_hist.ratio(out.pair_hist);
  return out;
}

}  // namespace geonet::core
