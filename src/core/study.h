#pragma once

#include <string>
#include <vector>

#include "core/as_analysis.h"
#include "core/density.h"
#include "core/distance_pref.h"
#include "core/hull_analysis.h"
#include "core/link_domains.h"
#include "core/link_lengths.h"
#include "core/waxman_fit.h"
#include "geo/box_counting.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"

namespace geonet::store {
class ArtifactCache;
}  // namespace geonet::store

namespace geonet::core {

/// Everything the paper computes for one study region of one dataset.
struct RegionStudy {
  geo::Region region;
  DensityAnalysis density;               ///< Figure 2 panel
  DistancePreference distance;           ///< Figure 4 panel
  WaxmanCharacterisation waxman;         ///< Figures 5-6, Table V row
  LinkDomainStats link_domains;          ///< Table VI row
};

/// What happened to one analysis phase under graceful degradation.
struct PhaseOutcome {
  std::string phase;    ///< e.g. "density:US"
  std::string error;    ///< empty when ok
  bool ok = true;
  bool skipped = false;  ///< not run: budget exhausted or dependency failed
};

/// Damage accounting for one run_study call. A degraded report is still
/// a report: failed phases keep their default-constructed results and
/// are listed here instead of aborting the study.
struct DegradationReport {
  std::vector<PhaseOutcome> phases;  ///< one entry per phase attempted
  std::size_t errors = 0;            ///< phases that threw
  std::size_t skipped = 0;           ///< phases not run
  std::size_t max_errors = 0;        ///< the budget this run had
  bool budget_exhausted = false;     ///< remaining phases were skipped
  /// Non-fatal events worth surfacing in the report, e.g. "cache entry
  /// for phase X was corrupt; recomputed". A note alone does not make the
  /// run degraded — the results are complete, just obtained the hard way.
  std::vector<std::string> notes;

  [[nodiscard]] bool degraded() const noexcept {
    return errors != 0 || skipped != 0;
  }
};

/// The complete result set of the paper for one processed dataset: the
/// top-level object of this library.
struct StudyReport {
  std::string dataset_name;

  std::vector<RegionDensityRow> economic_rows;    ///< Table III
  std::vector<RegionDensityRow> homogeneity_rows; ///< Table IV
  std::vector<RegionStudy> regions;               ///< US, Europe, Japan
  LinkDomainStats world_links;                    ///< Table VI world row
  LinkLengthAnalysis link_lengths;                ///< Yook et al. contrast
  AsSizeAnalysis as_sizes;                        ///< Figures 7-8
  HullAnalysis hulls;                             ///< Figures 9-10 (world)
  geo::FractalDimension fractal;                  ///< Yook et al. cross-check

  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t distinct_locations = 0;             ///< Table I column

  DegradationReport degradation;                  ///< phase damage, if any
};

struct StudyOptions {
  double patch_arcmin = 75.0;
  DistancePrefOptions distance;
  bool compute_fractal_dimension = true;
  /// Regions to study; empty = the paper's US / Europe / Japan.
  std::vector<geo::Region> regions;
  /// Degradation budget: phase errors tolerated before the remaining
  /// phases are skipped (`--max-errors`). Each phase that throws is
  /// captured into StudyReport::degradation instead of aborting the run.
  std::size_t max_errors = 8;
  /// Fault-injection hook: phases whose label appears here throw on
  /// entry, exercising the degradation machinery in tests and chaos
  /// drills ("density:US", "hulls", ...).
  std::vector<std::string> inject_phase_failures;
  /// Phase-level memoization (non-owning; nullptr = recompute everything).
  /// Each phase keys a snapshot of its result table on the full input
  /// fingerprint (see study_fingerprint in core/study_store.h); a warm
  /// re-run decodes instead of recomputing and is byte-identical to cold.
  store::ArtifactCache* cache = nullptr;
  /// Route proximity phases (pair counting, density tallies, region
  /// membership) through a geo::SpatialIndex over the graph's node
  /// locations. Results are byte-identical either way — the differential
  /// suite pins that — so neither this flag nor the index participates in
  /// study_fingerprint: warm cache entries stay valid across the switch.
  bool use_spatial_index = true;
  /// Prebuilt index over the graph's node locations in node-id order
  /// (e.g. decoded from a snapshot's SIDX section). Non-owning; nullptr
  /// makes run_study build one (or load it from the cache) when
  /// use_spatial_index is set. Ignored if its size mismatches the graph.
  const geo::SpatialIndex* spatial_index = nullptr;
};

/// Runs the paper's full analysis pipeline over one processed dataset.
/// This one call regenerates every table and figure of the paper for that
/// dataset (the benches print them; examples consume them).
StudyReport run_study(const net::AnnotatedGraph& graph,
                      const population::WorldPopulation& world,
                      const StudyOptions& options = {});

/// Renders a compact human-readable summary of a report.
std::string summarize(const StudyReport& report);

/// Renders the report's headline numbers as a JSON object — the
/// `sections.study` payload of an `obs::RunReport`
/// (schema geonet.run_report.v1; see docs/observability.md).
std::string study_report_json(const StudyReport& report);

/// Renders the degradation record as a JSON object (the analysis half of
/// a run report's `degradation` section): error/skip counts, the budget,
/// and the phases that failed or were skipped. "{}" for a clean run.
std::string study_degradation_json(const DegradationReport& degradation);

/// Writes the report's tables (III, IV, V, VI and the per-region fits)
/// as a markdown document; returns false on I/O failure.
bool write_study_markdown(const StudyReport& report, const std::string& path);

}  // namespace geonet::core
