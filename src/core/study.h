#pragma once

#include <string>
#include <vector>

#include "core/as_analysis.h"
#include "core/density.h"
#include "core/distance_pref.h"
#include "core/hull_analysis.h"
#include "core/link_domains.h"
#include "core/link_lengths.h"
#include "core/waxman_fit.h"
#include "geo/box_counting.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"

namespace geonet::core {

/// Everything the paper computes for one study region of one dataset.
struct RegionStudy {
  geo::Region region;
  DensityAnalysis density;               ///< Figure 2 panel
  DistancePreference distance;           ///< Figure 4 panel
  WaxmanCharacterisation waxman;         ///< Figures 5-6, Table V row
  LinkDomainStats link_domains;          ///< Table VI row
};

/// The complete result set of the paper for one processed dataset: the
/// top-level object of this library.
struct StudyReport {
  std::string dataset_name;

  std::vector<RegionDensityRow> economic_rows;    ///< Table III
  std::vector<RegionDensityRow> homogeneity_rows; ///< Table IV
  std::vector<RegionStudy> regions;               ///< US, Europe, Japan
  LinkDomainStats world_links;                    ///< Table VI world row
  LinkLengthAnalysis link_lengths;                ///< Yook et al. contrast
  AsSizeAnalysis as_sizes;                        ///< Figures 7-8
  HullAnalysis hulls;                             ///< Figures 9-10 (world)
  geo::FractalDimension fractal;                  ///< Yook et al. cross-check

  std::size_t nodes = 0;
  std::size_t links = 0;
  std::size_t distinct_locations = 0;             ///< Table I column
};

struct StudyOptions {
  double patch_arcmin = 75.0;
  DistancePrefOptions distance;
  bool compute_fractal_dimension = true;
  /// Regions to study; empty = the paper's US / Europe / Japan.
  std::vector<geo::Region> regions;
};

/// Runs the paper's full analysis pipeline over one processed dataset.
/// This one call regenerates every table and figure of the paper for that
/// dataset (the benches print them; examples consume them).
StudyReport run_study(const net::AnnotatedGraph& graph,
                      const population::WorldPopulation& world,
                      const StudyOptions& options = {});

/// Renders a compact human-readable summary of a report.
std::string summarize(const StudyReport& report);

/// Renders the report's headline numbers as a JSON object — the
/// `sections.study` payload of an `obs::RunReport`
/// (schema geonet.run_report.v1; see docs/observability.md).
std::string study_report_json(const StudyReport& report);

/// Writes the report's tables (III, IV, V, VI and the per-region fits)
/// as a markdown document; returns false on I/O failure.
bool write_study_markdown(const StudyReport& report, const std::string& path);

}  // namespace geonet::core
