#pragma once

#include "core/distance_pref.h"
#include "stats/linear_fit.h"

namespace geonet::core {

/// Section V's characterisation of f(d): an exponentially declining
/// Waxman-like regime for small d, a flat (distance-independent) regime
/// for large d, and the limit separating them (Table V).
struct WaxmanCharacterisation {
  /// ln f(d) vs d over the small-d window (Figure 5). slope = -1/lambda.
  stats::LinearFit semilog_fit;
  double lambda_miles = 0.0;  ///< decay scale, the paper's alpha*L
  double beta = 0.0;          ///< f(0) of the fit, exp(intercept)

  double small_d_cut_miles = 0.0;  ///< window used for the semilog fit
  double flat_level = 0.0;         ///< mean f(d) in the large-d regime

  /// F(d) linearity check over the large-d regime (Figure 6); r_squared
  /// near 1 supports distance independence.
  stats::LinearFit cumulative_fit;

  /// Where the exponential fit meets the flat level (Table V "Limit").
  double sensitivity_limit_miles = 0.0;
  /// Fraction of links shorter than the limit (Table V "% Links < Limit").
  double fraction_links_below_limit = 0.0;
};

struct WaxmanFitOptions {
  /// Upper edge (miles) of the small-d fit window; 0 picks the paper's
  /// values for the known study regions (250 / 300 / 200 mi) and a third
  /// of the histogram range otherwise.
  double small_d_cut_miles = 0.0;
  /// Bins with fewer supporting pairs than this are too noisy to fit.
  double min_pair_support = 30.0;
};

/// The small-d fit window the paper uses per study region (Figure 5).
double paper_small_d_cut(const geo::Region& region);

/// Fits both regimes of an empirical distance preference function.
WaxmanCharacterisation characterize_waxman(const DistancePreference& pref,
                                           const WaxmanFitOptions& options = {});

/// Convenience: runs distance_preference() then characterize_waxman() with
/// the paper's per-region parameters.
WaxmanCharacterisation characterize_region(const net::AnnotatedGraph& graph,
                                           const geo::Region& region,
                                           const DistancePrefOptions& pref_options = {});

}  // namespace geonet::core
