#include "net/topology.h"
#include "core/link_domains.h"

#include "geo/distance.h"

namespace geonet::core {

LinkDomainStats analyze_link_domains(
    const net::AnnotatedGraph& graph,
    const std::optional<geo::Region>& scope_region) {
  LinkDomainStats out;
  out.scope = scope_region ? scope_region->name : "World";

  double inter_total = 0.0;
  double intra_total = 0.0;
  for (const auto& edge : graph.edges()) {
    const auto& node_a = graph.node(edge.a);
    const auto& node_b = graph.node(edge.b);
    if (node_a.asn == net::kUnknownAs || node_b.asn == net::kUnknownAs) continue;
    if (scope_region && (!scope_region->contains(node_a.location) ||
                         !scope_region->contains(node_b.location))) {
      continue;
    }
    const double length =
        geo::great_circle_miles(node_a.location, node_b.location);
    if (node_a.asn == node_b.asn) {
      ++out.intradomain_count;
      intra_total += length;
    } else {
      ++out.interdomain_count;
      inter_total += length;
    }
  }
  if (out.interdomain_count > 0) {
    out.interdomain_mean_miles =
        inter_total / static_cast<double>(out.interdomain_count);
  }
  if (out.intradomain_count > 0) {
    out.intradomain_mean_miles =
        intra_total / static_cast<double>(out.intradomain_count);
  }
  return out;
}

}  // namespace geonet::core
