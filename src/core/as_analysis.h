#pragma once

#include <cstdint>
#include <vector>

#include "net/annotated_graph.h"
#include "stats/ccdf.h"

namespace geonet::core {

/// Section VI.A's three measures of AS size.
struct AsRecord {
  std::uint32_t asn = 0;
  std::size_t node_count = 0;      ///< interfaces (Skitter) or routers (Mercator)
  std::size_t location_count = 0;  ///< distinct geographic locations
  std::size_t degree = 0;          ///< neighbours in the AS graph
};

/// AS size analysis over a processed dataset. Nodes in the paper's
/// "separate AS" (asn 0, unmapped) are omitted, as in Section III.C.
struct AsSizeAnalysis {
  std::vector<AsRecord> records;

  /// log10-space Pearson correlations between the size measures
  /// (the tightness of the Figure 8 scatterplots).
  double corr_nodes_locations = 0.0;
  double corr_nodes_degree = 0.0;
  double corr_locations_degree = 0.0;

  /// CCDF tail fits of the three measures (Figure 7 long tails).
  stats::LinearFit tail_nodes;
  stats::LinearFit tail_locations;
  stats::LinearFit tail_degree;

  [[nodiscard]] std::vector<double> node_counts() const;
  [[nodiscard]] std::vector<double> location_counts() const;
  [[nodiscard]] std::vector<double> degrees() const;
};

/// Computes per-AS size measures, the AS graph degree, pairwise
/// correlations, and CCDF tail exponents.
AsSizeAnalysis analyze_as_sizes(const net::AnnotatedGraph& graph,
                                double location_quantum_deg = 0.01);

}  // namespace geonet::core
