#include "core/waxman_fit.h"

#include <cmath>
#include <vector>

namespace geonet::core {

double paper_small_d_cut(const geo::Region& region) {
  if (region.name == "US") return 250.0;
  if (region.name == "Europe") return 300.0;
  if (region.name == "Japan") return 200.0;
  return 0.0;
}

WaxmanCharacterisation characterize_waxman(const DistancePreference& pref,
                                           const WaxmanFitOptions& options) {
  WaxmanCharacterisation out;
  const std::size_t bins = pref.f.size();
  if (bins == 0) return out;

  const double range = pref.bin_miles * static_cast<double>(bins);
  out.small_d_cut_miles =
      options.small_d_cut_miles > 0.0 ? options.small_d_cut_miles : range / 3.0;

  // --- Small-d regime: ln f(d) vs d (Figure 5). Bins are weighted by the
  // square root of their pair support so sparsely-supported estimates do
  // not swamp the fit on small datasets. ---
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> ws;
  for (std::size_t b = 0; b < bins; ++b) {
    const double d = pref.bin_center(b);
    if (d > out.small_d_cut_miles) break;
    if (pref.f[b] <= 0.0 ||
        pref.pair_hist.count(b) < options.min_pair_support) {
      continue;
    }
    xs.push_back(d);
    ys.push_back(std::log(pref.f[b]));
    ws.push_back(std::sqrt(pref.pair_hist.count(b)));
  }
  out.semilog_fit = stats::fit_line_weighted(xs, ys, ws);
  if (out.semilog_fit.slope < 0.0) {
    out.lambda_miles = -1.0 / out.semilog_fit.slope;
  }
  out.beta = std::exp(out.semilog_fit.intercept);

  // --- Large-d regime: flat level and F(d) linearity (Figure 6). ---
  double flat_sum = 0.0;
  std::size_t flat_count = 0;
  const auto cumulated = pref.cumulated();
  std::vector<double> cx;
  std::vector<double> cy;
  for (std::size_t b = 0; b < bins; ++b) {
    const double d = pref.bin_center(b);
    if (d <= out.small_d_cut_miles) continue;
    if (pref.pair_hist.count(b) < options.min_pair_support) continue;
    flat_sum += pref.f[b];
    ++flat_count;
    cx.push_back(d);
    cy.push_back(cumulated[b]);
  }
  if (flat_count > 0) out.flat_level = flat_sum / static_cast<double>(flat_count);
  out.cumulative_fit = stats::fit_line(cx, cy);

  // --- Table V: the limit where the exponential meets the flat level. ---
  if (out.lambda_miles > 0.0 && out.flat_level > 0.0 &&
      out.beta > out.flat_level) {
    out.sensitivity_limit_miles =
        out.lambda_miles * std::log(out.beta / out.flat_level);
    out.fraction_links_below_limit =
        pref.fraction_links_below(out.sensitivity_limit_miles);
  }
  return out;
}

WaxmanCharacterisation characterize_region(
    const net::AnnotatedGraph& graph, const geo::Region& region,
    const DistancePrefOptions& pref_options) {
  const DistancePreference pref = distance_preference(graph, region, pref_options);
  WaxmanFitOptions fit_options;
  fit_options.small_d_cut_miles = paper_small_d_cut(region);
  return characterize_waxman(pref, fit_options);
}

}  // namespace geonet::core
