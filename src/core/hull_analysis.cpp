#include "net/topology.h"
#include "core/hull_analysis.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "exec/parallel.h"
#include "stats/summary.h"

namespace geonet::core {

namespace {

/// Smallest measure value v such that every AS with measure >= v has a
/// hull at least `area_cut`; 0 when no such regime exists.
double detect_threshold(const std::vector<AsHullRecord>& records,
                        double area_cut,
                        double (*measure)(const AsHullRecord&)) {
  std::vector<const AsHullRecord*> sorted;
  sorted.reserve(records.size());
  for (const auto& r : records) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(),
            [&](const AsHullRecord* a, const AsHullRecord* b) {
              return measure(*a) < measure(*b);
            });

  // Walk from the top down while every AS stays dispersed.
  double threshold = 0.0;
  bool any = false;
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    if ((*it)->hull_area_sq_miles < area_cut) break;
    threshold = measure(**it);
    any = true;
  }
  return any ? threshold : 0.0;
}

}  // namespace

HullAnalysis analyze_hulls(const net::AnnotatedGraph& graph,
                           const HullOptions& options,
                           const geo::SpatialIndex* index) {
  HullAnalysis out;

  // Restriction mask, answered through the index when one is supplied
  // (same contains() comparisons, bulk subtree skips).
  std::vector<std::uint8_t> restrict_mask;
  if (options.restrict_to && index != nullptr) {
    restrict_mask = index->region_mask(*options.restrict_to);
  }

  // Group node locations by AS (skipping the unmapped bucket), restricted
  // to the requested box when present.
  struct Accumulator {
    std::vector<geo::GeoPoint> points;
    std::unordered_set<std::uint64_t> locations;
  };
  std::unordered_map<std::uint32_t, Accumulator> by_as;
  std::uint32_t node_id = 0;
  for (const auto& node : graph.nodes()) {
    const std::uint32_t id = node_id++;
    if (node.asn == net::kUnknownAs) continue;
    if (options.restrict_to) {
      const bool inside = index != nullptr
                              ? restrict_mask[id] != 0
                              : options.restrict_to->contains(node.location);
      if (!inside) continue;
    }
    auto& acc = by_as[node.asn];
    acc.points.push_back(node.location);
    acc.locations.insert(
        geo::quantized_key(node.location, options.location_quantum_deg));
  }

  // AS degrees come from the full graph (degree is not a geographic
  // property, so the restriction does not apply).
  std::unordered_map<std::uint32_t, std::unordered_set<std::uint32_t>> neighbors;
  for (const auto& edge : graph.edges()) {
    const std::uint32_t as_a = graph.node(edge.a).asn;
    const std::uint32_t as_b = graph.node(edge.b).asn;
    if (as_a == net::kUnknownAs || as_b == net::kUnknownAs || as_a == as_b) {
      continue;
    }
    neighbors[as_a].insert(as_b);
    neighbors[as_b].insert(as_a);
  }

  const geo::AlbersProjection projection =
      options.restrict_to ? geo::AlbersProjection::for_region(*options.restrict_to)
                          : geo::AlbersProjection::world();

  // Hull construction is independent per AS: ASes are ordered by number
  // up front (so record i is a fixed AS regardless of hash-map iteration
  // or thread count) and chunks of the AS list fill disjoint slots of the
  // pre-sized record vector in parallel.
  std::vector<const std::pair<const std::uint32_t, Accumulator>*> groups;
  groups.reserve(by_as.size());
  for (const auto& entry : by_as) groups.push_back(&entry);
  std::sort(groups.begin(), groups.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });

  out.records.resize(groups.size());
  exec::RegionOptions region;
  region.name = "core/hulls_per_as";
  region.grain = 16;
  exec::parallel_for(groups.size(), region,
                     [&](std::size_t begin, std::size_t end, std::size_t) {
                       for (std::size_t i = begin; i < end; ++i) {
                         const auto& [asn, acc] = *groups[i];
                         AsHullRecord& record = out.records[i];
                         record.asn = asn;
                         record.node_count = acc.points.size();
                         record.location_count = acc.locations.size();
                         const auto it = neighbors.find(asn);
                         record.degree =
                             it == neighbors.end() ? 0 : it->second.size();
                         record.hull_area_sq_miles =
                             geo::hull_area_sq_miles(acc.points, projection);
                       }
                     });
  std::size_t zero_area = 0;
  for (const auto& record : out.records) {
    if (record.hull_area_sq_miles <= 0.0) ++zero_area;
  }

  if (!out.records.empty()) {
    out.zero_area_fraction =
        static_cast<double>(zero_area) / static_cast<double>(out.records.size());
  }

  // Dispersal cut: a fraction of the 99th-percentile positive hull.
  std::vector<double> positive_areas;
  for (const auto& r : out.records) {
    if (r.hull_area_sq_miles > 0.0) positive_areas.push_back(r.hull_area_sq_miles);
  }
  if (!positive_areas.empty()) {
    out.thresholds.dispersed_area_sq_miles =
        options.dispersed_fraction * stats::quantile(positive_areas, 0.99);
    const double cut = out.thresholds.dispersed_area_sq_miles;
    out.thresholds.by_degree = detect_threshold(
        out.records, cut,
        +[](const AsHullRecord& r) { return static_cast<double>(r.degree); });
    out.thresholds.by_node_count = detect_threshold(
        out.records, cut,
        +[](const AsHullRecord& r) { return static_cast<double>(r.node_count); });
    out.thresholds.by_locations = detect_threshold(
        out.records, cut, +[](const AsHullRecord& r) {
          return static_cast<double>(r.location_count);
        });
  }
  return out;
}

}  // namespace geonet::core
