#include "core/study.h"

#include <cstdio>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/study_store.h"
#include "err/status.h"
#include "geo/spatial_index_store.h"
#include "net/graph_io.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/table.h"
#include "store/cache.h"
#include "store/fs.h"
#include "store/snapshot.h"

namespace geonet::core {

StudyReport run_study(const net::AnnotatedGraph& graph,
                      const population::WorldPopulation& world,
                      const StudyOptions& options) {
  const obs::Span run_span("study/run");
  StudyReport report;
  report.dataset_name = graph.name();
  report.nodes = graph.node_count();
  report.links = graph.edge_count();

  {
    std::unordered_set<std::uint64_t> keys;
    for (const auto& node : graph.nodes()) {
      keys.insert(geo::quantized_key(node.location));
    }
    report.distinct_locations = keys.size();
  }

  // Graceful degradation: every phase runs under a capture harness. A
  // phase that throws leaves its default-constructed result in place and
  // is recorded in report.degradation; once the error budget is spent,
  // remaining phases are skipped rather than risk compounding damage.
  DegradationReport& degradation = report.degradation;
  degradation.max_errors = options.max_errors;
  err::ErrorBudget budget(options.max_errors);
  static obs::Counter& phase_errors_metric =
      obs::MetricsRegistry::global().counter("study.phase_errors");
  static obs::Counter& phase_skips_metric =
      obs::MetricsRegistry::global().counter("study.phase_skips");

  const auto skip_phase = [&](std::string label, std::string reason) {
    PhaseOutcome outcome;
    outcome.phase = std::move(label);
    outcome.ok = false;
    outcome.skipped = true;
    outcome.error = std::move(reason);
    ++degradation.skipped;
    phase_skips_metric.add();
    degradation.phases.push_back(std::move(outcome));
  };

  const auto run_phase = [&](const char* span_name, std::string label,
                             auto&& fn) -> bool {
    if (budget.exhausted()) {
      skip_phase(std::move(label), "error budget exhausted");
      return false;
    }
    PhaseOutcome outcome;
    outcome.phase = std::move(label);
    try {
      const obs::Span span(span_name);
      for (const std::string& injected : options.inject_phase_failures) {
        if (injected == outcome.phase) {
          throw std::runtime_error("injected failure: " + injected);
        }
      }
      fn();
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.error = e.what();
    } catch (...) {
      outcome.ok = false;
      outcome.error = "unknown error";
    }
    const bool ok = outcome.ok;
    if (!ok) {
      obs::log(obs::LogLevel::kWarn, "study phase '%s' failed: %s",
               outcome.phase.c_str(), outcome.error.c_str());
      ++degradation.errors;
      phase_errors_metric.add();
      budget.charge();
      degradation.budget_exhausted = budget.exhausted();
    }
    degradation.phases.push_back(std::move(outcome));
    return ok;
  };

  // Phase-level memoization: with a cache attached, each phase keys a
  // snapshot of its result on the full input fingerprint and decodes a
  // prior run's result instead of recomputing. The codecs are byte-exact,
  // so a warm run's report (and everything rendered from it) is identical
  // to a cold run's. A corrupt entry degrades to recomputation, recorded
  // in degradation.notes — never a crash, never a wrong result.
  store::ArtifactCache* const cache = options.cache;
  static obs::Counter& phase_hits_metric =
      obs::MetricsRegistry::global().counter("store.phase_hits");
  const store::Fingerprint base_fp = cache != nullptr
                                         ? study_fingerprint(graph, world, options)
                                         : store::Fingerprint{};

  const auto cached_phase = [&](const char* span_name,
                                const std::string& label,
                                std::uint32_t section, auto&& compute,
                                auto&& encode, auto&& decode) -> bool {
    if (cache == nullptr) return run_phase(span_name, label, compute);
    if (budget.exhausted()) {
      // Same skip the cold path takes — a hit here would make warm runs
      // diverge from cold ones under an exhausted budget.
      skip_phase(label, "error budget exhausted");
      return false;
    }
    store::Fingerprint fp = base_fp;
    fp.add("phase", label);
    const store::Digest128 key = fp.digest();
    auto bytes = cache->get(key);
    if (bytes.is_ok()) {
      const auto parsed = store::SnapshotView::parse(bytes.value());
      err::Status status = err::Status::ok();
      if (!parsed.is_ok()) {
        status = parsed.status();
      } else if (const auto* found = parsed.value().find(section)) {
        store::ByteReader reader(found->payload);
        status = decode(reader);
      } else {
        status = err::Status::data_loss("phase section missing");
      }
      if (status.is_ok()) {
        PhaseOutcome outcome;
        outcome.phase = label;
        degradation.phases.push_back(std::move(outcome));
        phase_hits_metric.add();
        return true;
      }
      degradation.notes.push_back("cache entry for phase '" + label +
                                  "' was undecodable (" + status.message() +
                                  "); recomputed");
    } else if (bytes.status().code() != err::Code::kNotFound) {
      // get() detected damage, quarantined the entry and counted
      // store.corrupt; the run report carries the event as a note.
      degradation.notes.push_back(bytes.status().message() + "; recomputed");
    }
    if (!run_phase(span_name, label, compute)) return false;
    store::ByteWriter body;
    encode(body);
    store::SnapshotWriter writer;
    writer.add_section(section, body.take());
    const err::Status put = cache->put(key, writer.finish());
    if (!put.is_ok()) {
      obs::log(obs::LogLevel::kWarn, "study phase '%s' not cached: %s",
               label.c_str(), put.message().c_str());
    }
    return true;
  };

  // Spatial-index resolution — the warm-index path. A caller-provided
  // index wins; otherwise, with a cache attached, the index is loaded
  // from (or stored into) a standalone SIDX snapshot keyed on the graph
  // digest, else built fresh. Deliberately outside the phase harness and
  // outside study_fingerprint: the index changes how proximity phases
  // compute, never what they produce (the differential suite pins the
  // byte identity), so cache entries stay valid across the switch.
  static obs::Counter& sidx_hits_metric =
      obs::MetricsRegistry::global().counter("store.sidx_hits");
  std::optional<geo::SpatialIndex> owned_index;
  const geo::SpatialIndex* index = nullptr;
  if (options.use_spatial_index) {
    if (options.spatial_index != nullptr &&
        options.spatial_index->size() == graph.node_count()) {
      index = options.spatial_index;
    } else {
      const obs::Span span("study/spatial_index");
      try {
        store::Digest128 sidx_key{};
        if (cache != nullptr) {
          store::Fingerprint fp = store::Fingerprint::with_provenance();
          fp.add("artifact", "spatial_index");
          fp.add("sidx_format", geo::kSpatialIndexFormatVersion);
          fp.add("graph", net::graph_digest(graph));
          sidx_key = fp.digest();
          auto bytes = cache->get(sidx_key);
          if (bytes.is_ok()) {
            auto decoded = geo::decode_spatial_index_snapshot(bytes.value());
            if (decoded.is_ok() &&
                decoded.value().size() == graph.node_count()) {
              owned_index = std::move(decoded).value();
              sidx_hits_metric.add();
            } else if (!decoded.is_ok()) {
              degradation.notes.push_back(
                  "cached spatial index was undecodable (" +
                  decoded.status().message() + "); rebuilt");
            }
          } else if (bytes.status().code() != err::Code::kNotFound) {
            degradation.notes.push_back(bytes.status().message() +
                                        "; spatial index rebuilt");
          }
        }
        if (!owned_index.has_value()) {
          owned_index = geo::SpatialIndex::build(graph.locations());
          if (cache != nullptr) {
            const err::Status put = cache->put(
                sidx_key, geo::encode_spatial_index_snapshot(*owned_index));
            if (!put.is_ok()) {
              obs::log(obs::LogLevel::kWarn, "spatial index not cached: %s",
                       put.message().c_str());
            }
          }
        }
        index = &*owned_index;
      } catch (const std::exception& e) {
        // The phases all have brute-force fallbacks; an index failure
        // (e.g. allocation) degrades to the unindexed paths, same bytes.
        degradation.notes.push_back(std::string("spatial index unavailable (") +
                                    e.what() + "); using brute-force paths");
        owned_index.reset();
        index = nullptr;
      }
    }
  }

  cached_phase(
      "study/economic_tables", "economic_tables", kSectionRegionTables,
      [&] {
        report.economic_rows = economic_region_table(graph, world, index);
        report.homogeneity_rows = homogeneity_table(graph, world, index);
      },
      [&](store::ByteWriter& out) {
        encode_region_tables(out, report.economic_rows,
                             report.homogeneity_rows);
      },
      [&](store::ByteReader& in) -> err::Status {
        auto tables = decode_region_tables(in);
        if (!tables.is_ok()) return tables.status();
        auto pair = std::move(tables).value();
        report.economic_rows = std::move(pair.first);
        report.homogeneity_rows = std::move(pair.second);
        return err::Status::ok();
      });

  const std::vector<geo::Region> regions =
      options.regions.empty() ? geo::regions::paper_study_regions()
                              : options.regions;
  for (const geo::Region& region : regions) {
    RegionStudy study;
    study.region = region;
    cached_phase(
        "study/density", "density:" + region.name, kSectionDensity,
        [&] {
          study.density = analyze_density(graph, world, region,
                                          options.patch_arcmin, index);
        },
        [&](store::ByteWriter& out) { encode_density(out, study.density); },
        [&](store::ByteReader& in) -> err::Status {
          auto density = decode_density(in);
          if (!density.is_ok()) return density.status();
          study.density = std::move(density).value();
          return err::Status::ok();
        });
    const bool distance_ok = cached_phase(
        "study/distance_pref", "distance_pref:" + region.name,
        kSectionDistancePref,
        [&] {
          study.distance =
              distance_preference(graph, region, options.distance, index);
        },
        [&](store::ByteWriter& out) {
          encode_distance_pref(out, study.distance);
        },
        [&](store::ByteReader& in) -> err::Status {
          auto pref = decode_distance_pref(in);
          if (!pref.is_ok()) return pref.status();
          study.distance = std::move(pref).value();
          return err::Status::ok();
        });
    if (distance_ok) {
      cached_phase(
          "study/waxman_fit", "waxman_fit:" + region.name, kSectionWaxman,
          [&] {
            WaxmanFitOptions fit_options;
            fit_options.small_d_cut_miles = paper_small_d_cut(region);
            study.waxman = characterize_waxman(study.distance, fit_options);
          },
          [&](store::ByteWriter& out) { encode_waxman(out, study.waxman); },
          [&](store::ByteReader& in) -> err::Status {
            auto wax = decode_waxman(in);
            if (!wax.is_ok()) return wax.status();
            study.waxman = std::move(wax).value();
            return err::Status::ok();
          });
    } else {
      // The fit consumes the distance histograms; fitting defaults would
      // manufacture a bogus exponent, so the phase sits out instead.
      skip_phase("waxman_fit:" + region.name,
                 "dependency failed: distance_pref:" + region.name);
    }
    cached_phase(
        "study/link_domains", "link_domains:" + region.name,
        kSectionLinkDomains,
        [&] { study.link_domains = analyze_link_domains(graph, region); },
        [&](store::ByteWriter& out) {
          encode_link_domains(out, study.link_domains);
        },
        [&](store::ByteReader& in) -> err::Status {
          auto links = decode_link_domains(in);
          if (!links.is_ok()) return links.status();
          study.link_domains = std::move(links).value();
          return err::Status::ok();
        });
    report.regions.push_back(std::move(study));
  }

  cached_phase(
      "study/link_domains", "link_domains:world", kSectionLinkDomains,
      [&] { report.world_links = analyze_link_domains(graph); },
      [&](store::ByteWriter& out) {
        encode_link_domains(out, report.world_links);
      },
      [&](store::ByteReader& in) -> err::Status {
        auto links = decode_link_domains(in);
        if (!links.is_ok()) return links.status();
        report.world_links = std::move(links).value();
        return err::Status::ok();
      });
  cached_phase(
      "study/link_lengths", "link_lengths", kSectionLinkLengths,
      [&] {
        report.link_lengths = analyze_link_lengths(graph, std::nullopt, index);
      },
      [&](store::ByteWriter& out) {
        encode_link_lengths(out, report.link_lengths);
      },
      [&](store::ByteReader& in) -> err::Status {
        auto lengths = decode_link_lengths(in);
        if (!lengths.is_ok()) return lengths.status();
        report.link_lengths = std::move(lengths).value();
        return err::Status::ok();
      });
  cached_phase(
      "study/as_analysis", "as_analysis", kSectionAsSizes,
      [&] { report.as_sizes = analyze_as_sizes(graph); },
      [&](store::ByteWriter& out) { encode_as_sizes(out, report.as_sizes); },
      [&](store::ByteReader& in) -> err::Status {
        auto as_sizes = decode_as_sizes(in);
        if (!as_sizes.is_ok()) return as_sizes.status();
        report.as_sizes = std::move(as_sizes).value();
        return err::Status::ok();
      });
  cached_phase(
      "study/hulls", "hulls", kSectionHulls,
      [&] { report.hulls = analyze_hulls(graph, {}, index); },
      [&](store::ByteWriter& out) { encode_hulls(out, report.hulls); },
      [&](store::ByteReader& in) -> err::Status {
        auto hulls = decode_hulls(in);
        if (!hulls.is_ok()) return hulls.status();
        report.hulls = std::move(hulls).value();
        return err::Status::ok();
      });

  if (options.compute_fractal_dimension) {
    cached_phase(
        "study/fractal_dimension", "fractal_dimension", kSectionFractal,
        [&] {
          report.fractal = geo::box_counting_dimension(graph.locations(),
                                                       geo::regions::us());
        },
        [&](store::ByteWriter& out) { encode_fractal(out, report.fractal); },
        [&](store::ByteReader& in) -> err::Status {
          auto fractal = decode_fractal(in);
          if (!fractal.is_ok()) return fractal.status();
          report.fractal = std::move(fractal).value();
          return err::Status::ok();
        });
  }
  return report;
}

std::string study_degradation_json(const DegradationReport& degradation) {
  obs::JsonWriter json;
  json.begin_object();
  if (degradation.degraded()) {
    json.key("errors").value(static_cast<std::uint64_t>(degradation.errors));
    json.key("skipped").value(static_cast<std::uint64_t>(degradation.skipped));
    json.key("max_errors")
        .value(static_cast<std::uint64_t>(degradation.max_errors));
    json.key("budget_exhausted").value(degradation.budget_exhausted);
    json.key("phases_run")
        .value(static_cast<std::uint64_t>(degradation.phases.size()));
    json.key("failed_phases").begin_array();
    for (const PhaseOutcome& outcome : degradation.phases) {
      if (outcome.ok || outcome.skipped) continue;
      json.begin_object();
      json.key("phase").value(outcome.phase);
      json.key("error").value(outcome.error);
      json.end_object();
    }
    json.end_array();
    json.key("skipped_phases").begin_array();
    for (const PhaseOutcome& outcome : degradation.phases) {
      if (!outcome.skipped) continue;
      json.begin_object();
      json.key("phase").value(outcome.phase);
      json.key("reason").value(outcome.error);
      json.end_object();
    }
    json.end_array();
  }
  if (!degradation.notes.empty()) {
    json.key("notes").begin_array();
    for (const std::string& note : degradation.notes) json.value(note);
    json.end_array();
  }
  json.end_object();
  return json.str();
}

std::string study_report_json(const StudyReport& report) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("dataset").value(report.dataset_name);
  json.key("nodes").value(report.nodes);
  json.key("links").value(report.links);
  json.key("distinct_locations").value(report.distinct_locations);
  json.key("degraded").value(report.degradation.degraded());

  json.key("regions").begin_array();
  for (const auto& region : report.regions) {
    json.begin_object();
    json.key("name").value(region.region.name);
    json.key("density_slope").value(region.density.loglog_fit.slope);
    json.key("lambda_miles").value(region.waxman.lambda_miles);
    json.key("sensitivity_limit_miles")
        .value(region.waxman.sensitivity_limit_miles);
    json.key("fraction_links_below_limit")
        .value(region.waxman.fraction_links_below_limit);
    json.key("intradomain_fraction")
        .value(region.link_domains.intradomain_fraction());
    json.end_object();
  }
  json.end_array();

  json.key("as_analysis").begin_object();
  json.key("records").value(report.as_sizes.records.size());
  json.key("corr_nodes_locations").value(report.as_sizes.corr_nodes_locations);
  json.key("corr_nodes_degree").value(report.as_sizes.corr_nodes_degree);
  json.key("corr_locations_degree").value(report.as_sizes.corr_locations_degree);
  json.end_object();

  json.key("hulls").begin_object();
  json.key("zero_area_fraction").value(report.hulls.zero_area_fraction);
  json.key("threshold_by_degree").value(report.hulls.thresholds.by_degree);
  json.key("threshold_by_node_count")
      .value(report.hulls.thresholds.by_node_count);
  json.key("threshold_by_locations")
      .value(report.hulls.thresholds.by_locations);
  json.end_object();

  json.key("link_lengths").begin_object();
  json.key("median_miles").value(report.link_lengths.summary.median);
  json.key("mean_miles").value(report.link_lengths.summary.mean);
  json.key("fraction_zero").value(report.link_lengths.fraction_zero);
  json.end_object();

  json.key("fractal_dimension_us").value(report.fractal.dimension);
  json.end_object();
  return json.str();
}

std::string summarize(const StudyReport& report) {
  std::string out;
  char line[256];
  const auto append = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };

  append("dataset: %s\n", report.dataset_name.c_str());
  append("  nodes=%zu links=%zu locations=%zu\n", report.nodes, report.links,
         report.distinct_locations);
  if (report.degradation.degraded()) {
    append("  DEGRADED: %zu phase error(s), %zu skipped (budget %zu%s)\n",
           report.degradation.errors, report.degradation.skipped,
           report.degradation.max_errors,
           report.degradation.budget_exhausted ? ", EXHAUSTED" : "");
  }
  for (const auto& region : report.regions) {
    append("  %-7s density-slope=%.2f  lambda=%.0f mi  limit=%.0f mi  "
           "links<limit=%.1f%%  intra=%.1f%%\n",
           region.region.name.c_str(), region.density.loglog_fit.slope,
           region.waxman.lambda_miles, region.waxman.sensitivity_limit_miles,
           100.0 * region.waxman.fraction_links_below_limit,
           100.0 * region.link_domains.intradomain_fraction());
  }
  append("  AS records=%zu  corr(nodes,locs)=%.2f  corr(nodes,deg)=%.2f  "
         "corr(locs,deg)=%.2f\n",
         report.as_sizes.records.size(), report.as_sizes.corr_nodes_locations,
         report.as_sizes.corr_nodes_degree,
         report.as_sizes.corr_locations_degree);
  append("  hulls: zero-area=%.1f%%  thresholds deg=%.0f nodes=%.0f locs=%.0f\n",
         100.0 * report.hulls.zero_area_fraction,
         report.hulls.thresholds.by_degree,
         report.hulls.thresholds.by_node_count,
         report.hulls.thresholds.by_locations);
  append("  link lengths: median=%.0f mi  mean=%.0f mi  zero-frac=%.2f\n",
         report.link_lengths.summary.median, report.link_lengths.summary.mean,
         report.link_lengths.fraction_zero);
  append("  fractal dimension (US): %.2f\n", report.fractal.dimension);
  return out;
}

bool write_study_markdown(const StudyReport& report, const std::string& path) {
  std::ostringstream out;
  out << "# Study: " << report.dataset_name << "\n\n";
  out << report.nodes << " nodes, " << report.links << " links, "
      << report.distinct_locations << " distinct locations\n\n";

  out << "## Table III: people per node across economic regions\n\n";
  report::Table economic({"Region", "Pop (M)", "Nodes", "People/Node",
                          "Online/Node"});
  for (const auto& row : report.economic_rows) {
    economic.add_row({row.name, report::fmt(row.population_millions, 0),
                      report::fmt_count(row.nodes),
                      report::fmt(row.people_per_node, 0),
                      report::fmt(row.online_per_node, 0)});
  }
  out << economic.to_markdown() << "\n";

  out << "## Table IV: homogeneity test\n\n";
  report::Table homogeneity({"Region", "Pop (M)", "Nodes", "People/Node"});
  for (const auto& row : report.homogeneity_rows) {
    homogeneity.add_row({row.name, report::fmt(row.population_millions, 0),
                         report::fmt_count(row.nodes),
                         report::fmt(row.people_per_node, 0)});
  }
  out << homogeneity.to_markdown() << "\n";

  out << "## Per-region fits (Figures 2, 5; Tables V, VI)\n\n";
  report::Table regions({"Region", "density slope", "lambda (mi)",
                         "limit (mi)", "% links < limit", "intra %"});
  for (const auto& region : report.regions) {
    regions.add_row(
        {region.region.name, report::fmt(region.density.loglog_fit.slope, 2),
         report::fmt(region.waxman.lambda_miles, 0),
         report::fmt(region.waxman.sensitivity_limit_miles, 0),
         report::fmt_percent(region.waxman.fraction_links_below_limit),
         report::fmt_percent(region.link_domains.intradomain_fraction())});
  }
  out << regions.to_markdown() << "\n";

  out << "## AS structure (Figures 7-10)\n\n";
  out << "- ASes: " << report.as_sizes.records.size() << "\n";
  out << "- corr(interfaces, locations): "
      << report::fmt(report.as_sizes.corr_nodes_locations, 2) << "\n";
  out << "- corr(interfaces, degree): "
      << report::fmt(report.as_sizes.corr_nodes_degree, 2) << "\n";
  out << "- zero-hull fraction: "
      << report::fmt_percent(report.hulls.zero_area_fraction) << "\n";
  out << "- dispersal thresholds: degree "
      << report::fmt(report.hulls.thresholds.by_degree, 0) << ", nodes "
      << report::fmt(report.hulls.thresholds.by_node_count, 0)
      << ", locations "
      << report::fmt(report.hulls.thresholds.by_locations, 0) << "\n";
  return store::atomic_write_text(path, out.str());
}

}  // namespace geonet::core
