#include "core/study.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <unordered_set>

#include "err/status.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "report/table.h"

namespace geonet::core {

StudyReport run_study(const net::AnnotatedGraph& graph,
                      const population::WorldPopulation& world,
                      const StudyOptions& options) {
  const obs::Span run_span("study/run");
  StudyReport report;
  report.dataset_name = graph.name();
  report.nodes = graph.node_count();
  report.links = graph.edge_count();

  {
    std::unordered_set<std::uint64_t> keys;
    for (const auto& node : graph.nodes()) {
      keys.insert(geo::quantized_key(node.location));
    }
    report.distinct_locations = keys.size();
  }

  // Graceful degradation: every phase runs under a capture harness. A
  // phase that throws leaves its default-constructed result in place and
  // is recorded in report.degradation; once the error budget is spent,
  // remaining phases are skipped rather than risk compounding damage.
  DegradationReport& degradation = report.degradation;
  degradation.max_errors = options.max_errors;
  err::ErrorBudget budget(options.max_errors);
  static obs::Counter& phase_errors_metric =
      obs::MetricsRegistry::global().counter("study.phase_errors");
  static obs::Counter& phase_skips_metric =
      obs::MetricsRegistry::global().counter("study.phase_skips");

  const auto skip_phase = [&](std::string label, std::string reason) {
    PhaseOutcome outcome;
    outcome.phase = std::move(label);
    outcome.ok = false;
    outcome.skipped = true;
    outcome.error = std::move(reason);
    ++degradation.skipped;
    phase_skips_metric.add();
    degradation.phases.push_back(std::move(outcome));
  };

  const auto run_phase = [&](const char* span_name, std::string label,
                             auto&& fn) -> bool {
    if (budget.exhausted()) {
      skip_phase(std::move(label), "error budget exhausted");
      return false;
    }
    PhaseOutcome outcome;
    outcome.phase = std::move(label);
    try {
      const obs::Span span(span_name);
      for (const std::string& injected : options.inject_phase_failures) {
        if (injected == outcome.phase) {
          throw std::runtime_error("injected failure: " + injected);
        }
      }
      fn();
    } catch (const std::exception& e) {
      outcome.ok = false;
      outcome.error = e.what();
    } catch (...) {
      outcome.ok = false;
      outcome.error = "unknown error";
    }
    const bool ok = outcome.ok;
    if (!ok) {
      obs::log(obs::LogLevel::kWarn, "study phase '%s' failed: %s",
               outcome.phase.c_str(), outcome.error.c_str());
      ++degradation.errors;
      phase_errors_metric.add();
      budget.charge();
      degradation.budget_exhausted = budget.exhausted();
    }
    degradation.phases.push_back(std::move(outcome));
    return ok;
  };

  run_phase("study/economic_tables", "economic_tables", [&] {
    report.economic_rows = economic_region_table(graph, world);
    report.homogeneity_rows = homogeneity_table(graph, world);
  });

  const std::vector<geo::Region> regions =
      options.regions.empty() ? geo::regions::paper_study_regions()
                              : options.regions;
  for (const geo::Region& region : regions) {
    RegionStudy study;
    study.region = region;
    run_phase("study/density", "density:" + region.name, [&] {
      study.density =
          analyze_density(graph, world, region, options.patch_arcmin);
    });
    const bool distance_ok =
        run_phase("study/distance_pref", "distance_pref:" + region.name, [&] {
          study.distance = distance_preference(graph, region, options.distance);
        });
    if (distance_ok) {
      run_phase("study/waxman_fit", "waxman_fit:" + region.name, [&] {
        WaxmanFitOptions fit_options;
        fit_options.small_d_cut_miles = paper_small_d_cut(region);
        study.waxman = characterize_waxman(study.distance, fit_options);
      });
    } else {
      // The fit consumes the distance histograms; fitting defaults would
      // manufacture a bogus exponent, so the phase sits out instead.
      skip_phase("waxman_fit:" + region.name,
                 "dependency failed: distance_pref:" + region.name);
    }
    run_phase("study/link_domains", "link_domains:" + region.name, [&] {
      study.link_domains = analyze_link_domains(graph, region);
    });
    report.regions.push_back(std::move(study));
  }

  run_phase("study/link_domains", "link_domains:world", [&] {
    report.world_links = analyze_link_domains(graph);
  });
  run_phase("study/link_lengths", "link_lengths", [&] {
    report.link_lengths = analyze_link_lengths(graph);
  });
  run_phase("study/as_analysis", "as_analysis", [&] {
    report.as_sizes = analyze_as_sizes(graph);
  });
  run_phase("study/hulls", "hulls", [&] {
    report.hulls = analyze_hulls(graph);
  });

  if (options.compute_fractal_dimension) {
    run_phase("study/fractal_dimension", "fractal_dimension", [&] {
      report.fractal = geo::box_counting_dimension(graph.locations(),
                                                   geo::regions::us());
    });
  }
  return report;
}

std::string study_degradation_json(const DegradationReport& degradation) {
  obs::JsonWriter json;
  json.begin_object();
  if (degradation.degraded()) {
    json.key("errors").value(static_cast<std::uint64_t>(degradation.errors));
    json.key("skipped").value(static_cast<std::uint64_t>(degradation.skipped));
    json.key("max_errors")
        .value(static_cast<std::uint64_t>(degradation.max_errors));
    json.key("budget_exhausted").value(degradation.budget_exhausted);
    json.key("phases_run")
        .value(static_cast<std::uint64_t>(degradation.phases.size()));
    json.key("failed_phases").begin_array();
    for (const PhaseOutcome& outcome : degradation.phases) {
      if (outcome.ok || outcome.skipped) continue;
      json.begin_object();
      json.key("phase").value(outcome.phase);
      json.key("error").value(outcome.error);
      json.end_object();
    }
    json.end_array();
    json.key("skipped_phases").begin_array();
    for (const PhaseOutcome& outcome : degradation.phases) {
      if (!outcome.skipped) continue;
      json.begin_object();
      json.key("phase").value(outcome.phase);
      json.key("reason").value(outcome.error);
      json.end_object();
    }
    json.end_array();
  }
  json.end_object();
  return json.str();
}

std::string study_report_json(const StudyReport& report) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("dataset").value(report.dataset_name);
  json.key("nodes").value(report.nodes);
  json.key("links").value(report.links);
  json.key("distinct_locations").value(report.distinct_locations);
  json.key("degraded").value(report.degradation.degraded());

  json.key("regions").begin_array();
  for (const auto& region : report.regions) {
    json.begin_object();
    json.key("name").value(region.region.name);
    json.key("density_slope").value(region.density.loglog_fit.slope);
    json.key("lambda_miles").value(region.waxman.lambda_miles);
    json.key("sensitivity_limit_miles")
        .value(region.waxman.sensitivity_limit_miles);
    json.key("fraction_links_below_limit")
        .value(region.waxman.fraction_links_below_limit);
    json.key("intradomain_fraction")
        .value(region.link_domains.intradomain_fraction());
    json.end_object();
  }
  json.end_array();

  json.key("as_analysis").begin_object();
  json.key("records").value(report.as_sizes.records.size());
  json.key("corr_nodes_locations").value(report.as_sizes.corr_nodes_locations);
  json.key("corr_nodes_degree").value(report.as_sizes.corr_nodes_degree);
  json.key("corr_locations_degree").value(report.as_sizes.corr_locations_degree);
  json.end_object();

  json.key("hulls").begin_object();
  json.key("zero_area_fraction").value(report.hulls.zero_area_fraction);
  json.key("threshold_by_degree").value(report.hulls.thresholds.by_degree);
  json.key("threshold_by_node_count")
      .value(report.hulls.thresholds.by_node_count);
  json.key("threshold_by_locations")
      .value(report.hulls.thresholds.by_locations);
  json.end_object();

  json.key("link_lengths").begin_object();
  json.key("median_miles").value(report.link_lengths.summary.median);
  json.key("mean_miles").value(report.link_lengths.summary.mean);
  json.key("fraction_zero").value(report.link_lengths.fraction_zero);
  json.end_object();

  json.key("fractal_dimension_us").value(report.fractal.dimension);
  json.end_object();
  return json.str();
}

std::string summarize(const StudyReport& report) {
  std::string out;
  char line[256];
  const auto append = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };

  append("dataset: %s\n", report.dataset_name.c_str());
  append("  nodes=%zu links=%zu locations=%zu\n", report.nodes, report.links,
         report.distinct_locations);
  if (report.degradation.degraded()) {
    append("  DEGRADED: %zu phase error(s), %zu skipped (budget %zu%s)\n",
           report.degradation.errors, report.degradation.skipped,
           report.degradation.max_errors,
           report.degradation.budget_exhausted ? ", EXHAUSTED" : "");
  }
  for (const auto& region : report.regions) {
    append("  %-7s density-slope=%.2f  lambda=%.0f mi  limit=%.0f mi  "
           "links<limit=%.1f%%  intra=%.1f%%\n",
           region.region.name.c_str(), region.density.loglog_fit.slope,
           region.waxman.lambda_miles, region.waxman.sensitivity_limit_miles,
           100.0 * region.waxman.fraction_links_below_limit,
           100.0 * region.link_domains.intradomain_fraction());
  }
  append("  AS records=%zu  corr(nodes,locs)=%.2f  corr(nodes,deg)=%.2f  "
         "corr(locs,deg)=%.2f\n",
         report.as_sizes.records.size(), report.as_sizes.corr_nodes_locations,
         report.as_sizes.corr_nodes_degree,
         report.as_sizes.corr_locations_degree);
  append("  hulls: zero-area=%.1f%%  thresholds deg=%.0f nodes=%.0f locs=%.0f\n",
         100.0 * report.hulls.zero_area_fraction,
         report.hulls.thresholds.by_degree,
         report.hulls.thresholds.by_node_count,
         report.hulls.thresholds.by_locations);
  append("  link lengths: median=%.0f mi  mean=%.0f mi  zero-frac=%.2f\n",
         report.link_lengths.summary.median, report.link_lengths.summary.mean,
         report.link_lengths.fraction_zero);
  append("  fractal dimension (US): %.2f\n", report.fractal.dimension);
  return out;
}

bool write_study_markdown(const StudyReport& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# Study: " << report.dataset_name << "\n\n";
  out << report.nodes << " nodes, " << report.links << " links, "
      << report.distinct_locations << " distinct locations\n\n";

  out << "## Table III: people per node across economic regions\n\n";
  report::Table economic({"Region", "Pop (M)", "Nodes", "People/Node",
                          "Online/Node"});
  for (const auto& row : report.economic_rows) {
    economic.add_row({row.name, report::fmt(row.population_millions, 0),
                      report::fmt_count(row.nodes),
                      report::fmt(row.people_per_node, 0),
                      report::fmt(row.online_per_node, 0)});
  }
  out << economic.to_markdown() << "\n";

  out << "## Table IV: homogeneity test\n\n";
  report::Table homogeneity({"Region", "Pop (M)", "Nodes", "People/Node"});
  for (const auto& row : report.homogeneity_rows) {
    homogeneity.add_row({row.name, report::fmt(row.population_millions, 0),
                         report::fmt_count(row.nodes),
                         report::fmt(row.people_per_node, 0)});
  }
  out << homogeneity.to_markdown() << "\n";

  out << "## Per-region fits (Figures 2, 5; Tables V, VI)\n\n";
  report::Table regions({"Region", "density slope", "lambda (mi)",
                         "limit (mi)", "% links < limit", "intra %"});
  for (const auto& region : report.regions) {
    regions.add_row(
        {region.region.name, report::fmt(region.density.loglog_fit.slope, 2),
         report::fmt(region.waxman.lambda_miles, 0),
         report::fmt(region.waxman.sensitivity_limit_miles, 0),
         report::fmt_percent(region.waxman.fraction_links_below_limit),
         report::fmt_percent(region.link_domains.intradomain_fraction())});
  }
  out << regions.to_markdown() << "\n";

  out << "## AS structure (Figures 7-10)\n\n";
  out << "- ASes: " << report.as_sizes.records.size() << "\n";
  out << "- corr(interfaces, locations): "
      << report::fmt(report.as_sizes.corr_nodes_locations, 2) << "\n";
  out << "- corr(interfaces, degree): "
      << report::fmt(report.as_sizes.corr_nodes_degree, 2) << "\n";
  out << "- zero-hull fraction: "
      << report::fmt_percent(report.hulls.zero_area_fraction) << "\n";
  out << "- dispersal thresholds: degree "
      << report::fmt(report.hulls.thresholds.by_degree, 0) << ", nodes "
      << report::fmt(report.hulls.thresholds.by_node_count, 0)
      << ", locations "
      << report::fmt(report.hulls.thresholds.by_locations, 0) << "\n";
  return static_cast<bool>(out);
}

}  // namespace geonet::core
