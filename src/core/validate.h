#pragma once

#include <string>
#include <vector>

#include "geo/region.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"

namespace geonet::core {

/// The paper's empirical findings, distilled into a topology-realism
/// signature. This is the deliverable the conclusion calls for: a way to
/// *validate* candidate topologies ("providing an important characteristic
/// to be taken into account in constructing and validating topology
/// generators", Section V).
struct RealismSignature {
  double density_slope = 0.0;          ///< Figure 2: expect > 1
  double density_r2 = 0.0;
  double lambda_miles = 0.0;           ///< Figure 5: expect O(100) miles
  double fraction_distance_sensitive = 0.0;  ///< Table V: expect 0.75-0.95
  double degree_tail_slope = 0.0;      ///< Figure 7-ish: expect < -1
  double intradomain_fraction = 0.0;   ///< Table VI: expect > 0.8
  double corr_nodes_locations = 0.0;   ///< Figure 8: expect strong
  double zero_hull_fraction = 0.0;     ///< Figure 9: expect a point mass
  std::size_t as_count = 0;
  std::size_t nodes = 0;
  std::size_t links = 0;
};

/// One acceptance criterion derived from the paper.
struct RealismCheck {
  std::string criterion;
  bool pass = false;
  double value = 0.0;
  std::string expectation;
};

struct RealismReport {
  RealismSignature signature;
  std::vector<RealismCheck> checks;
  std::size_t passed = 0;

  [[nodiscard]] bool all_pass() const noexcept {
    return passed == checks.size();
  }
};

/// Measures the signature of a topology over `region` using `world` as
/// the population reference.
RealismSignature measure_signature(const net::AnnotatedGraph& graph,
                                   const population::WorldPopulation& world,
                                   const geo::Region& region);

/// Evaluates the paper's acceptance criteria against a signature.
/// Criteria without AS structure (single-AS graphs) are skipped rather
/// than failed.
RealismReport evaluate_realism(const RealismSignature& signature);

/// Convenience: measure + evaluate.
RealismReport check_realism(const net::AnnotatedGraph& graph,
                            const population::WorldPopulation& world,
                            const geo::Region& region);

/// Renders the report as an aligned text block.
std::string to_string(const RealismReport& report);

}  // namespace geonet::core
