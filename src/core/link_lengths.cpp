#include "core/link_lengths.h"

#include <algorithm>

#include "exec/parallel.h"
#include "geo/distance.h"
#include "net/graph_algos.h"
#include "stats/rng.h"

namespace geonet::core {

LinkLengthAnalysis analyze_link_lengths(
    const net::AnnotatedGraph& graph,
    const std::optional<geo::Region>& scope_region,
    const geo::SpatialIndex* index) {
  LinkLengthAnalysis out;

  // Scope membership per node, answered once up front: through the index
  // (identical contains() comparisons, out-of-region subtrees skipped
  // wholesale) or a linear scan.
  std::vector<std::uint8_t> in_scope;
  if (scope_region) {
    if (index != nullptr) {
      in_scope = index->region_mask(*scope_region);
    } else {
      in_scope.resize(graph.node_count());
      for (std::uint32_t id = 0; id < graph.node_count(); ++id) {
        in_scope[id] = scope_region->contains(graph.node(id).location) ? 1 : 0;
      }
    }
  }

  // Chunked edge sweep; per-chunk vectors concatenate in chunk order, so
  // lengths_miles matches the serial edge order at any thread count.
  struct Acc {
    std::vector<double> lengths;
    std::size_t zero = 0;
  };
  exec::RegionOptions region_options;
  region_options.name = "core/link_lengths";
  region_options.grain = 1024;
  Acc acc = exec::parallel_reduce<Acc>(
      graph.edge_count(), region_options, [] { return Acc(); },
      [&](Acc& chunk, std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t e = begin; e < end; ++e) {
          const auto& edge = graph.edges()[e];
          if (scope_region &&
              (in_scope[edge.a] == 0 || in_scope[edge.b] == 0)) {
            continue;
          }
          const double miles =
              geo::great_circle_miles(graph.node(edge.a).location,
                                      graph.node(edge.b).location);
          chunk.lengths.push_back(miles);
          if (miles < 1e-9) ++chunk.zero;
        }
      },
      [](Acc& into, Acc&& from) {
        into.lengths.insert(into.lengths.end(), from.lengths.begin(),
                            from.lengths.end());
        into.zero += from.zero;
      });
  out.lengths_miles = std::move(acc.lengths);
  const std::size_t zero = acc.zero;
  out.summary = stats::summarize(out.lengths_miles);
  if (!out.lengths_miles.empty()) {
    out.fraction_zero =
        static_cast<double>(zero) /
        static_cast<double>(out.lengths_miles.size());
  }
  out.tail = stats::fit_ccdf_tail(out.lengths_miles, 0.6);
  return out;
}

SmallWorldProbe probe_link_removal(const net::AnnotatedGraph& graph,
                                   double remove_fraction,
                                   LinkRemoval strategy,
                                   std::size_t hop_samples,
                                   std::uint64_t seed) {
  SmallWorldProbe out;
  const std::size_t m = graph.edge_count();
  if (m == 0) return out;

  // Order links by the removal criterion; keep the first
  // (1 - remove_fraction) of them.
  std::vector<std::size_t> order(m);
  for (std::size_t e = 0; e < m; ++e) order[e] = e;
  if (strategy == LinkRemoval::kLongest) {
    std::vector<double> length(m);
    for (std::size_t e = 0; e < m; ++e) {
      const auto& edge = graph.edges()[e];
      length[e] = geo::great_circle_miles(graph.node(edge.a).location,
                                          graph.node(edge.b).location);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return length[a] < length[b];
    });
  } else {
    stats::Rng rng(seed ^ 0xabcdef12ULL);
    rng.shuffle(std::span<std::size_t>(order));
  }
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(m) *
      std::clamp(1.0 - remove_fraction, 0.0, 1.0));

  net::AnnotatedGraph pruned(graph.kind(), graph.name() + " (pruned)");
  for (const auto& node : graph.nodes()) pruned.add_node(node);
  for (std::size_t i = 0; i < keep; ++i) {
    const auto& edge = graph.edges()[order[i]];
    pruned.add_edge(edge.a, edge.b);
  }

  out.kept_fraction =
      m == 0 ? 0.0 : static_cast<double>(keep) / static_cast<double>(m);
  out.giant_component = net::giant_component_size(pruned);
  out.mean_hops = net::estimated_mean_hops(pruned, hop_samples, seed);
  return out;
}

}  // namespace geonet::core
