#include "core/link_lengths.h"

#include <algorithm>

#include "geo/distance.h"
#include "net/graph_algos.h"
#include "stats/rng.h"

namespace geonet::core {

LinkLengthAnalysis analyze_link_lengths(
    const net::AnnotatedGraph& graph,
    const std::optional<geo::Region>& scope_region) {
  LinkLengthAnalysis out;
  std::size_t zero = 0;
  for (const auto& edge : graph.edges()) {
    const auto& a = graph.node(edge.a).location;
    const auto& b = graph.node(edge.b).location;
    if (scope_region && (!scope_region->contains(a) ||
                         !scope_region->contains(b))) {
      continue;
    }
    const double miles = geo::great_circle_miles(a, b);
    out.lengths_miles.push_back(miles);
    if (miles < 1e-9) ++zero;
  }
  out.summary = stats::summarize(out.lengths_miles);
  if (!out.lengths_miles.empty()) {
    out.fraction_zero =
        static_cast<double>(zero) /
        static_cast<double>(out.lengths_miles.size());
  }
  out.tail = stats::fit_ccdf_tail(out.lengths_miles, 0.6);
  return out;
}

SmallWorldProbe probe_link_removal(const net::AnnotatedGraph& graph,
                                   double remove_fraction,
                                   LinkRemoval strategy,
                                   std::size_t hop_samples,
                                   std::uint64_t seed) {
  SmallWorldProbe out;
  const std::size_t m = graph.edge_count();
  if (m == 0) return out;

  // Order links by the removal criterion; keep the first
  // (1 - remove_fraction) of them.
  std::vector<std::size_t> order(m);
  for (std::size_t e = 0; e < m; ++e) order[e] = e;
  if (strategy == LinkRemoval::kLongest) {
    std::vector<double> length(m);
    for (std::size_t e = 0; e < m; ++e) {
      const auto& edge = graph.edges()[e];
      length[e] = geo::great_circle_miles(graph.node(edge.a).location,
                                          graph.node(edge.b).location);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return length[a] < length[b];
    });
  } else {
    stats::Rng rng(seed ^ 0xabcdef12ULL);
    rng.shuffle(std::span<std::size_t>(order));
  }
  const auto keep = static_cast<std::size_t>(
      static_cast<double>(m) *
      std::clamp(1.0 - remove_fraction, 0.0, 1.0));

  net::AnnotatedGraph pruned(graph.kind(), graph.name() + " (pruned)");
  for (const auto& node : graph.nodes()) pruned.add_node(node);
  for (std::size_t i = 0; i < keep; ++i) {
    const auto& edge = graph.edges()[order[i]];
    pruned.add_edge(edge.a, edge.b);
  }

  out.kept_fraction =
      m == 0 ? 0.0 : static_cast<double>(keep) / static_cast<double>(m);
  out.giant_component = net::giant_component_size(pruned);
  out.mean_hops = net::estimated_mean_hops(pruned, hop_samples, seed);
  return out;
}

}  // namespace geonet::core
