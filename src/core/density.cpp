#include "core/density.h"

#include <cmath>
#include <limits>

#include "exec/parallel.h"
#include "geo/grid.h"

namespace geonet::core {

DensityAnalysis analyze_density(const net::AnnotatedGraph& graph,
                                const population::WorldPopulation& world,
                                const geo::Region& region,
                                double patch_arcmin,
                                const geo::SpatialIndex* index) {
  DensityAnalysis out;
  out.patch_arcmin = patch_arcmin;

  const geo::Grid patches(region, patch_arcmin);
  std::vector<double> node_counts(patches.cell_count(), 0.0);
  if (index != nullptr) {
    // Same per-point cell_of decisions with out-of-region subtrees
    // skipped in bulk; counts are unit adds, so the totals are exact and
    // identical to the serial scan below.
    std::size_t dropped = 0;
    node_counts = index->tally(patches, &dropped);
    out.nodes_in_region = graph.node_count() - dropped;
  } else {
    for (const auto& node : graph.nodes()) {
      if (const auto cell = patches.cell_of(node.location)) {
        node_counts[patches.flat_index(*cell)] += 1.0;
        ++out.nodes_in_region;
      }
    }
  }

  // Per-patch population lookups dominate this phase; chunks of the flat
  // cell index aggregate into private vectors, appended in chunk order so
  // the patch list (and the fit over it) is independent of thread count.
  struct PatchAcc {
    std::vector<PatchPoint> patches;
    std::vector<double> log_pop;
    std::vector<double> log_nodes;
    std::size_t occupied = 0;
  };
  exec::RegionOptions region_options;
  region_options.name = "core/density_patches";
  region_options.grain = 256;
  PatchAcc acc = exec::parallel_reduce<PatchAcc>(
      node_counts.size(), region_options, [] { return PatchAcc(); },
      [&](PatchAcc& chunk_acc, std::size_t begin, std::size_t end,
          std::size_t) {
        for (std::size_t flat = begin; flat < end; ++flat) {
          if (node_counts[flat] <= 0.0) continue;
          ++chunk_acc.occupied;
          const geo::Region bounds =
              patches.cell_bounds(patches.unflatten(flat));
          const double people = world.population_in(bounds);
          if (people <= 0.0) continue;
          chunk_acc.patches.push_back({people, node_counts[flat]});
          chunk_acc.log_pop.push_back(std::log10(people));
          chunk_acc.log_nodes.push_back(std::log10(node_counts[flat]));
        }
      },
      [](PatchAcc& into, PatchAcc&& from) {
        into.patches.insert(into.patches.end(), from.patches.begin(),
                            from.patches.end());
        into.log_pop.insert(into.log_pop.end(), from.log_pop.begin(),
                            from.log_pop.end());
        into.log_nodes.insert(into.log_nodes.end(), from.log_nodes.begin(),
                              from.log_nodes.end());
        into.occupied += from.occupied;
      });

  out.patches = std::move(acc.patches);
  out.occupied_patches = acc.occupied;
  out.loglog_fit = stats::fit_line(acc.log_pop, acc.log_nodes);
  return out;
}

std::size_t count_nodes_in(const net::AnnotatedGraph& graph,
                           const geo::Region& region,
                           const geo::SpatialIndex* index) {
  if (index != nullptr) {
    const auto mask = index->region_mask(region);
    std::size_t count = 0;
    for (const std::uint8_t inside : mask) count += inside;
    return count;
  }
  std::size_t count = 0;
  for (const auto& node : graph.nodes()) {
    if (region.contains(node.location)) ++count;
  }
  return count;
}

namespace {

RegionDensityRow make_row(std::string name, double population_millions,
                          double online_millions, std::size_t nodes) {
  RegionDensityRow row;
  row.name = std::move(name);
  row.population_millions = population_millions;
  row.online_millions = online_millions;
  row.nodes = nodes;
  if (nodes > 0) {
    row.people_per_node = population_millions * 1e6 / static_cast<double>(nodes);
    row.online_per_node = online_millions * 1e6 / static_cast<double>(nodes);
  } else {
    // A region can legitimately end up empty (e.g. an all-faults run
    // killing every monitor that covers it). people-per-node is then
    // undefined, not zero: the NaN sentinel renders as "n/a" in tables
    // (report::fmt) and null in JSON (obs::JsonWriter).
    row.people_per_node = std::numeric_limits<double>::quiet_NaN();
    row.online_per_node = std::numeric_limits<double>::quiet_NaN();
  }
  return row;
}

}  // namespace

std::vector<RegionDensityRow> economic_region_table(
    const net::AnnotatedGraph& graph, const population::WorldPopulation& world,
    const geo::SpatialIndex* index) {
  std::vector<RegionDensityRow> rows;
  double world_pop = 0.0;
  double world_online = 0.0;
  for (const auto& profile : world.profiles()) {
    rows.push_back(make_row(profile.name, profile.population_millions,
                            profile.online_millions,
                            count_nodes_in(graph, profile.extent, index)));
    world_pop += profile.population_millions;
    world_online += profile.online_millions;
  }
  rows.push_back(make_row("World", world_pop, world_online, graph.node_count()));
  return rows;
}

std::vector<RegionDensityRow> homogeneity_table(
    const net::AnnotatedGraph& graph, const population::WorldPopulation& world,
    const geo::SpatialIndex* index) {
  std::vector<RegionDensityRow> rows;
  for (const geo::Region& region :
       {geo::regions::northern_us(), geo::regions::southern_us(),
        geo::regions::central_america()}) {
    const double people = world.population_in(region);
    rows.push_back(make_row(region.name, people / 1e6, 0.0,
                            count_nodes_in(graph, region, index)));
  }
  return rows;
}

}  // namespace geonet::core
