#include "core/density.h"

#include <cmath>

#include "geo/grid.h"

namespace geonet::core {

DensityAnalysis analyze_density(const net::AnnotatedGraph& graph,
                                const population::WorldPopulation& world,
                                const geo::Region& region,
                                double patch_arcmin) {
  DensityAnalysis out;
  out.patch_arcmin = patch_arcmin;

  const geo::Grid patches(region, patch_arcmin);
  std::vector<double> node_counts(patches.cell_count(), 0.0);
  for (const auto& node : graph.nodes()) {
    if (const auto cell = patches.cell_of(node.location)) {
      node_counts[patches.flat_index(*cell)] += 1.0;
      ++out.nodes_in_region;
    }
  }

  std::vector<double> log_pop;
  std::vector<double> log_nodes;
  for (std::size_t flat = 0; flat < node_counts.size(); ++flat) {
    if (node_counts[flat] <= 0.0) continue;
    ++out.occupied_patches;
    const geo::Region bounds = patches.cell_bounds(patches.unflatten(flat));
    const double people = world.population_in(bounds);
    if (people <= 0.0) continue;
    out.patches.push_back({people, node_counts[flat]});
    log_pop.push_back(std::log10(people));
    log_nodes.push_back(std::log10(node_counts[flat]));
  }

  out.loglog_fit = stats::fit_line(log_pop, log_nodes);
  return out;
}

std::size_t count_nodes_in(const net::AnnotatedGraph& graph,
                           const geo::Region& region) {
  std::size_t count = 0;
  for (const auto& node : graph.nodes()) {
    if (region.contains(node.location)) ++count;
  }
  return count;
}

namespace {

RegionDensityRow make_row(std::string name, double population_millions,
                          double online_millions, std::size_t nodes) {
  RegionDensityRow row;
  row.name = std::move(name);
  row.population_millions = population_millions;
  row.online_millions = online_millions;
  row.nodes = nodes;
  if (nodes > 0) {
    row.people_per_node = population_millions * 1e6 / static_cast<double>(nodes);
    row.online_per_node = online_millions * 1e6 / static_cast<double>(nodes);
  }
  return row;
}

}  // namespace

std::vector<RegionDensityRow> economic_region_table(
    const net::AnnotatedGraph& graph, const population::WorldPopulation& world) {
  std::vector<RegionDensityRow> rows;
  double world_pop = 0.0;
  double world_online = 0.0;
  for (const auto& profile : world.profiles()) {
    rows.push_back(make_row(profile.name, profile.population_millions,
                            profile.online_millions,
                            count_nodes_in(graph, profile.extent)));
    world_pop += profile.population_millions;
    world_online += profile.online_millions;
  }
  rows.push_back(make_row("World", world_pop, world_online, graph.node_count()));
  return rows;
}

std::vector<RegionDensityRow> homogeneity_table(
    const net::AnnotatedGraph& graph, const population::WorldPopulation& world) {
  std::vector<RegionDensityRow> rows;
  for (const geo::Region& region :
       {geo::regions::northern_us(), geo::regions::southern_us(),
        geo::regions::central_america()}) {
    const double people = world.population_in(region);
    rows.push_back(make_row(region.name, people / 1e6, 0.0,
                            count_nodes_in(graph, region)));
  }
  return rows;
}

}  // namespace geonet::core
