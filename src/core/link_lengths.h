#pragma once

#include <optional>
#include <vector>

#include "geo/region.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"
#include "stats/ccdf.h"
#include "stats/summary.h"

namespace geonet::core {

/// Section II contrast: Yook, Jeong & Barabasi studied the *distribution
/// of link lengths*, whereas the paper studies the conditional
/// probability f(d). This module computes the former so both views can be
/// compared on the same dataset.
struct LinkLengthAnalysis {
  std::vector<double> lengths_miles;   ///< one entry per in-scope link
  stats::Summary summary;
  double fraction_zero = 0.0;          ///< same-location links
  stats::LinearFit tail;               ///< CCDF log-log tail fit
};

/// Computes link lengths for links with both endpoints inside
/// `scope_region` (or all links when nullopt). The edge sweep is chunked
/// on the exec pool with per-chunk length vectors concatenated in chunk
/// order, so the stored lengths match the serial edge order at any thread
/// count. `index`, when non-null, must be built over the graph's node
/// locations in node-id order and answers the scope membership test.
LinkLengthAnalysis analyze_link_lengths(
    const net::AnnotatedGraph& graph,
    const std::optional<geo::Region>& scope_region = std::nullopt,
    const geo::SpatialIndex* index = nullptr);

/// Small-world probe (the paper's Section V endnote, citing Watts &
/// Strogatz): the few non-local links "play an important structural
/// role". Removing the longest X% of links is compared against removing
/// a random X%: the long links hold the graph's distant parts together,
/// so targeting them shrinks the giant component (and/or stretches paths)
/// far more than random damage of equal size does.
struct SmallWorldProbe {
  double kept_fraction = 0.0;           ///< links kept
  double mean_hops = 0.0;               ///< over reachable pairs
  std::size_t giant_component = 0;
};

enum class LinkRemoval : std::uint8_t { kLongest, kRandom };

SmallWorldProbe probe_link_removal(const net::AnnotatedGraph& graph,
                                   double remove_fraction,
                                   LinkRemoval strategy,
                                   std::size_t hop_samples = 64,
                                   std::uint64_t seed = 9);

}  // namespace geonet::core
