#pragma once

#include <optional>
#include <string>

#include "geo/region.h"
#include "net/annotated_graph.h"

namespace geonet::core {

/// Section VI.C / Table VI: interdomain vs intradomain link statistics.
///
/// A link is interdomain when its endpoints carry different (known) AS
/// numbers, intradomain when they match. Links touching the unmapped AS
/// bucket are excluded, as the paper omits that separate AS from all AS
/// analyses.
struct LinkDomainStats {
  std::string scope;  ///< region name or "World"
  std::size_t interdomain_count = 0;
  std::size_t intradomain_count = 0;
  double interdomain_mean_miles = 0.0;
  double intradomain_mean_miles = 0.0;

  [[nodiscard]] double intradomain_fraction() const noexcept {
    const std::size_t total = interdomain_count + intradomain_count;
    return total == 0 ? 0.0
                      : static_cast<double>(intradomain_count) /
                            static_cast<double>(total);
  }
};

/// Computes Table VI for one scope: links with both endpoints inside
/// `scope_region` (or every link when nullopt).
LinkDomainStats analyze_link_domains(
    const net::AnnotatedGraph& graph,
    const std::optional<geo::Region>& scope_region = std::nullopt);

}  // namespace geonet::core
