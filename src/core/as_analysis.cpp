#include "net/topology.h"
#include "core/as_analysis.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "stats/summary.h"

namespace geonet::core {

namespace {

std::vector<double> log10_of(const std::vector<double>& xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (const double x : xs) out.push_back(std::log10(std::max(x, 1e-12)));
  return out;
}

}  // namespace

std::vector<double> AsSizeAnalysis::node_counts() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(static_cast<double>(r.node_count));
  return out;
}

std::vector<double> AsSizeAnalysis::location_counts() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) {
    out.push_back(static_cast<double>(r.location_count));
  }
  return out;
}

std::vector<double> AsSizeAnalysis::degrees() const {
  std::vector<double> out;
  out.reserve(records.size());
  for (const auto& r : records) out.push_back(static_cast<double>(r.degree));
  return out;
}

AsSizeAnalysis analyze_as_sizes(const net::AnnotatedGraph& graph,
                                double location_quantum_deg) {
  AsSizeAnalysis out;

  struct Accumulator {
    std::size_t nodes = 0;
    std::unordered_set<std::uint64_t> locations;
    std::unordered_set<std::uint32_t> neighbors;
  };
  std::unordered_map<std::uint32_t, Accumulator> by_as;

  for (const auto& node : graph.nodes()) {
    if (node.asn == net::kUnknownAs) continue;  // the paper's separate AS
    auto& acc = by_as[node.asn];
    ++acc.nodes;
    acc.locations.insert(geo::quantized_key(node.location, location_quantum_deg));
  }

  for (const auto& edge : graph.edges()) {
    const std::uint32_t as_a = graph.node(edge.a).asn;
    const std::uint32_t as_b = graph.node(edge.b).asn;
    if (as_a == net::kUnknownAs || as_b == net::kUnknownAs || as_a == as_b) {
      continue;
    }
    by_as[as_a].neighbors.insert(as_b);
    by_as[as_b].neighbors.insert(as_a);
  }

  out.records.reserve(by_as.size());
  for (const auto& [asn, acc] : by_as) {
    out.records.push_back(
        {asn, acc.nodes, acc.locations.size(), acc.neighbors.size()});
  }
  // Deterministic order for reproducible output.
  std::sort(out.records.begin(), out.records.end(),
            [](const AsRecord& a, const AsRecord& b) { return a.asn < b.asn; });

  const auto nodes = log10_of(out.node_counts());
  const auto locations = log10_of(out.location_counts());
  // Degree-0 ASes (no interdomain edge observed) would force log(0);
  // correlations use only ASes present in the AS graph.
  std::vector<double> deg_nodes, deg_locations, deg_values;
  for (const auto& r : out.records) {
    if (r.degree == 0) continue;
    deg_nodes.push_back(std::log10(static_cast<double>(r.node_count)));
    deg_locations.push_back(std::log10(static_cast<double>(r.location_count)));
    deg_values.push_back(std::log10(static_cast<double>(r.degree)));
  }

  out.corr_nodes_locations = stats::pearson(nodes, locations);
  out.corr_nodes_degree = stats::pearson(deg_nodes, deg_values);
  out.corr_locations_degree = stats::pearson(deg_locations, deg_values);

  out.tail_nodes = stats::fit_ccdf_tail(out.node_counts());
  out.tail_locations = stats::fit_ccdf_tail(out.location_counts());
  out.tail_degree = stats::fit_ccdf_tail(out.degrees());
  return out;
}

}  // namespace geonet::core
