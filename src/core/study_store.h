#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/study.h"
#include "err/status.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"
#include "store/bytes.h"
#include "store/fingerprint.h"
#include "store/snapshot.h"

namespace geonet::core {

/// Binary codecs for study-phase result tables — the payloads the
/// artifact cache stores so an incremental `geonet study` re-run can skip
/// recomputation (see run_study and docs/storage.md).
///
/// Every codec is byte-exact (doubles round-trip bit for bit) so a warm
/// run reproduces the cold run's artifacts byte-identically. Decoders
/// return kDataLoss on any malformation; they never over-read or crash —
/// a corrupt cache entry degrades to recomputation.

/// Section fourccs for phase snapshots (one section per snapshot).
inline constexpr std::uint32_t kSectionDensity =
    store::fourcc('D', 'E', 'N', 'S');
inline constexpr std::uint32_t kSectionDistancePref =
    store::fourcc('D', 'P', 'R', 'F');
inline constexpr std::uint32_t kSectionWaxman =
    store::fourcc('W', 'A', 'X', 'F');
inline constexpr std::uint32_t kSectionLinkDomains =
    store::fourcc('L', 'D', 'O', 'M');
inline constexpr std::uint32_t kSectionLinkLengths =
    store::fourcc('L', 'L', 'E', 'N');
inline constexpr std::uint32_t kSectionAsSizes =
    store::fourcc('A', 'S', 'S', 'Z');
inline constexpr std::uint32_t kSectionHulls =
    store::fourcc('H', 'U', 'L', 'L');
inline constexpr std::uint32_t kSectionFractal =
    store::fourcc('F', 'R', 'A', 'C');
inline constexpr std::uint32_t kSectionRegionTables =
    store::fourcc('T', 'A', 'B', 'L');

// --- Shared sub-codecs ----------------------------------------------

void encode_fit(store::ByteWriter& out, const stats::LinearFit& fit);
stats::LinearFit decode_fit(store::ByteReader& in);

void encode_summary(store::ByteWriter& out, const stats::Summary& summary);
stats::Summary decode_summary(store::ByteReader& in);

void encode_histogram(store::ByteWriter& out, const stats::Histogram& hist);
err::Result<stats::Histogram> decode_histogram(store::ByteReader& in);

// --- Phase-result codecs --------------------------------------------

void encode_density(store::ByteWriter& out, const DensityAnalysis& density);
err::Result<DensityAnalysis> decode_density(store::ByteReader& in);

void encode_distance_pref(store::ByteWriter& out,
                          const DistancePreference& pref);
err::Result<DistancePreference> decode_distance_pref(store::ByteReader& in);

void encode_waxman(store::ByteWriter& out, const WaxmanCharacterisation& wax);
err::Result<WaxmanCharacterisation> decode_waxman(store::ByteReader& in);

void encode_link_domains(store::ByteWriter& out, const LinkDomainStats& links);
err::Result<LinkDomainStats> decode_link_domains(store::ByteReader& in);

void encode_link_lengths(store::ByteWriter& out,
                         const LinkLengthAnalysis& lengths);
err::Result<LinkLengthAnalysis> decode_link_lengths(store::ByteReader& in);

void encode_as_sizes(store::ByteWriter& out, const AsSizeAnalysis& as_sizes);
err::Result<AsSizeAnalysis> decode_as_sizes(store::ByteReader& in);

void encode_hulls(store::ByteWriter& out, const HullAnalysis& hulls);
err::Result<HullAnalysis> decode_hulls(store::ByteReader& in);

void encode_fractal(store::ByteWriter& out, const geo::FractalDimension& dim);
err::Result<geo::FractalDimension> decode_fractal(store::ByteReader& in);

/// The economic_tables phase produces Tables III and IV together; they
/// share one payload.
void encode_region_tables(store::ByteWriter& out,
                          const std::vector<RegionDensityRow>& economic,
                          const std::vector<RegionDensityRow>& homogeneity);
err::Result<std::pair<std::vector<RegionDensityRow>,
                      std::vector<RegionDensityRow>>>
decode_region_tables(store::ByteReader& in);

// --- Cache keys -----------------------------------------------------

/// Content digest over the synthetic planet: raster shapes, totals, city
/// lists and a strided cell sample per profile. Any change to the
/// population substrate — a different seed, profile set or synthesis
/// option — changes this digest, and with it every study-phase cache key.
store::Digest128 world_digest(const population::WorldPopulation& world);

/// The base fingerprint a run_study call keys its phase cache on:
/// provenance + graph content + world content + every StudyOptions field.
/// Each phase then mixes its own label in (see run_study).
store::Fingerprint study_fingerprint(const net::AnnotatedGraph& graph,
                                     const population::WorldPopulation& world,
                                     const StudyOptions& options);

}  // namespace geonet::core
