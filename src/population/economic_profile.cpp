#include "population/economic_profile.h"

namespace geonet::population {

std::vector<EconomicProfile> world_profiles() {
  // Population / online-user / interface figures follow the paper's
  // Table III (IxMapper + Skitter column). Placement alphas follow the
  // Figure 2 fitted slopes for the three study regions; other regions get
  // a moderate default. Boxes are disjoint by construction.
  std::vector<EconomicProfile> profiles;

  profiles.push_back({.name = "Africa",
                      .extent = {"Africa", -35.0, 35.0, -18.0, 52.0},
                      .population_millions = 837.0,
                      .online_millions = 4.15,
                      .paper_interfaces = 8379.0,
                      .placement_alpha = 1.5,
                      .city_count = 520,
                      .zipf_s = 1.05,
                      .urban_fraction = 0.55,
                      .link_distance_scale_miles = 95.0});

  profiles.push_back({.name = "South America",
                      .extent = {"South America", -56.0, 7.0, -82.0, -34.0},
                      .population_millions = 341.0,
                      .online_millions = 21.9,
                      .paper_interfaces = 10131.0,
                      .placement_alpha = 1.5,
                      .city_count = 420,
                      .zipf_s = 1.08,
                      .urban_fraction = 0.75,
                      .link_distance_scale_miles = 95.0});

  profiles.push_back({.name = "Mexico",
                      .extent = {"Mexico", 7.0, 25.0, -118.0, -83.1},
                      .population_millions = 154.0,
                      .online_millions = 3.42,
                      .paper_interfaces = 4361.0,
                      .placement_alpha = 1.5,
                      .city_count = 260,
                      .zipf_s = 1.12,
                      .urban_fraction = 0.7,
                      .link_distance_scale_miles = 95.0});

  profiles.push_back({.name = "W. Europe",
                      .extent = {"W. Europe", 36.0, 60.0, -10.0, 22.0},
                      .population_millions = 366.0,
                      .online_millions = 143.0,
                      .paper_interfaces = 95993.0,
                      .placement_alpha = 2.0,
                      .city_count = 750,
                      .zipf_s = 0.95,
                      .urban_fraction = 0.85,
                      .link_distance_scale_miles = 42.0});

  profiles.push_back({.name = "Japan",
                      .extent = {"Japan", 30.0, 46.0, 130.0, 146.0},
                      .population_millions = 136.0,
                      .online_millions = 47.1,
                      .paper_interfaces = 37649.0,
                      .placement_alpha = 2.3,
                      .city_count = 340,
                      .zipf_s = 1.1,
                      .urban_fraction = 0.88,
                      .link_distance_scale_miles = 48.0});

  profiles.push_back({.name = "Australia",
                      .extent = {"Australia", -45.0, -10.0, 112.0, 155.0},
                      .population_millions = 18.0,
                      .online_millions = 10.1,
                      .paper_interfaces = 18277.0,
                      .placement_alpha = 1.55,
                      .city_count = 160,
                      .zipf_s = 1.2,
                      .urban_fraction = 0.9,
                      .link_distance_scale_miles = 95.0});

  profiles.push_back({.name = "USA",
                      .extent = {"USA", 25.0, 49.5, -125.0, -66.0},
                      .population_millions = 299.0,
                      .online_millions = 166.0,
                      .paper_interfaces = 282048.0,
                      .placement_alpha = 1.55,
                      .city_count = 950,
                      .zipf_s = 1.0,
                      .urban_fraction = 0.8,
                      .link_distance_scale_miles = 105.0});

  return profiles;
}

std::optional<EconomicProfile> profile_by_name(std::string_view name) {
  for (auto& profile : world_profiles()) {
    if (profile.name == name) return profile;
  }
  return std::nullopt;
}

EconomicProfile world_totals() {
  EconomicProfile total;
  total.name = "World";
  total.extent = geo::regions::world();
  for (const auto& profile : world_profiles()) {
    total.population_millions += profile.population_millions;
    total.online_millions += profile.online_millions;
    total.paper_interfaces += profile.paper_interfaces;
  }
  return total;
}

}  // namespace geonet::population
