#pragma once

#include <vector>

#include "population/economic_profile.h"
#include "population/population_grid.h"
#include "stats/rng.h"

namespace geonet::population {

/// Knobs for the synthetic population builder.
struct SynthesisOptions {
  double cell_arcmin = 7.5;        ///< raster resolution (1/10 of a patch)
  double cluster_probability = 0.7;///< chance a city seeds near an earlier one
  double cluster_scale_miles = 60.0;   ///< Pareto scale of inter-city hops
  double cluster_pareto_alpha = 1.1;   ///< heavy tail of inter-city hops
  double min_city_sigma_miles = 4.0;   ///< urban kernel width floor
  double sigma_per_sqrt_person = 0.004;///< kernel width growth with city size
};

/// Generates the synthetic city list for a profile: sizes follow a Zipf
/// law over ranks; centres follow a clustered (correlated random walk)
/// placement that yields the patchy, fractal-like spatial pattern real
/// population grids show.
std::vector<City> synthesize_cities(const EconomicProfile& profile,
                                    stats::Rng& rng,
                                    const SynthesisOptions& options = {});

/// Builds the full population raster for one economic region: Zipf cities
/// spread with Gaussian kernels plus a uniform rural background
/// (1 - urban_fraction of the total).
PopulationGrid synthesize_population(const EconomicProfile& profile,
                                     stats::Rng& rng,
                                     const SynthesisOptions& options = {});

/// The complete synthetic planet: one raster per economic region.
///
/// This is the substrate equivalent of "CIESIN + Nua": everything the
/// paper's Section IV analysis needs to relate infrastructure to people.
class WorldPopulation {
 public:
  /// Builds rasters for all `world_profiles()` deterministically from seed.
  static WorldPopulation build(std::uint64_t seed,
                               const SynthesisOptions& options = {});

  /// Builds rasters for a custom profile set (parameter-sweep studies).
  static WorldPopulation build(std::uint64_t seed,
                               std::vector<EconomicProfile> profiles,
                               const SynthesisOptions& options = {});

  [[nodiscard]] const std::vector<EconomicProfile>& profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] const std::vector<PopulationGrid>& grids() const noexcept {
    return grids_;
  }
  [[nodiscard]] const PopulationGrid& grid_for(std::size_t profile_index) const {
    return grids_.at(profile_index);
  }

  /// Total people across the planet.
  [[nodiscard]] double total_population() const noexcept;

  /// Population inside an arbitrary box, summed across all rasters.
  [[nodiscard]] double population_in(const geo::Region& box) const noexcept;

 private:
  std::vector<EconomicProfile> profiles_;
  std::vector<PopulationGrid> grids_;
};

}  // namespace geonet::population
