#include "population/synth_population.h"

#include <algorithm>
#include <cmath>

#include "geo/distance.h"
#include "stats/distributions.h"

namespace geonet::population {

std::vector<City> synthesize_cities(const EconomicProfile& profile,
                                    stats::Rng& rng,
                                    const SynthesisOptions& options) {
  std::vector<City> cities;
  if (profile.city_count == 0 || profile.population_millions <= 0.0) {
    return cities;
  }
  cities.reserve(profile.city_count);

  const geo::Region& box = profile.extent;
  const auto uniform_point = [&]() {
    return geo::GeoPoint{rng.uniform(box.south_deg, box.north_deg),
                         rng.uniform(box.west_deg, box.east_deg)};
  };

  // Clustered placement: most cities spawn a heavy-tailed hop away from an
  // existing city, producing coastal-corridor-like agglomerations rather
  // than a uniform scatter (the paper stresses router placement is highly
  // irregular, tracking exactly this kind of population pattern).
  for (std::size_t i = 0; i < profile.city_count; ++i) {
    geo::GeoPoint center;
    if (i == 0 || !rng.bernoulli(options.cluster_probability)) {
      center = uniform_point();
    } else {
      const auto& anchor = cities[rng.uniform_index(cities.size())];
      const double hop = stats::pareto(rng, options.cluster_scale_miles,
                                       options.cluster_pareto_alpha);
      center = geo::destination_point(anchor.center, rng.uniform(0.0, 360.0),
                                      hop);
      if (!box.contains(center)) center = uniform_point();
    }
    cities.push_back({center, 0.0});
  }

  // Zipf sizes over ranks, normalised to the urban share of the region.
  const double urban_people =
      profile.population_millions * 1e6 * profile.urban_fraction;
  double weight_sum = 0.0;
  std::vector<double> weights(cities.size());
  for (std::size_t rank = 1; rank <= cities.size(); ++rank) {
    weights[rank - 1] = std::pow(static_cast<double>(rank), -profile.zipf_s);
    weight_sum += weights[rank - 1];
  }
  for (std::size_t i = 0; i < cities.size(); ++i) {
    cities[i].population = urban_people * weights[i] / weight_sum;
  }
  return cities;
}

namespace {

/// Spreads one city's population over nearby raster cells with a Gaussian
/// kernel truncated at 3 sigma.
void deposit_city(PopulationGrid& raster, const City& city, double sigma_miles) {
  const geo::Grid& grid = raster.grid();
  const auto center_cell = grid.cell_of(city.center);
  if (!center_cell) return;

  const double cell_deg = grid.cell_arcmin() / 60.0;
  const double lat_miles_per_cell = cell_deg * geo::miles_per_lat_degree();
  const double lon_miles_per_cell =
      cell_deg * std::max(1.0, geo::miles_per_lon_degree(city.center.lat_deg));
  const auto reach_rows = static_cast<std::ptrdiff_t>(
      std::ceil(3.0 * sigma_miles / lat_miles_per_cell));
  const auto reach_cols = static_cast<std::ptrdiff_t>(
      std::ceil(3.0 * sigma_miles / lon_miles_per_cell));

  struct Deposit {
    geo::CellIndex cell;
    double weight;
  };
  std::vector<Deposit> deposits;
  double weight_sum = 0.0;

  const auto rows = static_cast<std::ptrdiff_t>(grid.rows());
  const auto cols = static_cast<std::ptrdiff_t>(grid.cols());
  for (std::ptrdiff_t dr = -reach_rows; dr <= reach_rows; ++dr) {
    const std::ptrdiff_t row = static_cast<std::ptrdiff_t>(center_cell->row) + dr;
    if (row < 0 || row >= rows) continue;
    for (std::ptrdiff_t dc = -reach_cols; dc <= reach_cols; ++dc) {
      const std::ptrdiff_t col = static_cast<std::ptrdiff_t>(center_cell->col) + dc;
      if (col < 0 || col >= cols) continue;
      const geo::CellIndex cell{static_cast<std::size_t>(row),
                                static_cast<std::size_t>(col)};
      const double d = geo::great_circle_miles(city.center, grid.cell_center(cell));
      if (d > 3.0 * sigma_miles) continue;
      const double w = std::exp(-0.5 * (d / sigma_miles) * (d / sigma_miles));
      deposits.push_back({cell, w});
      weight_sum += w;
    }
  }
  if (weight_sum <= 0.0) {
    raster.deposit_cell(*center_cell, city.population);
    return;
  }
  for (const auto& dep : deposits) {
    raster.deposit_cell(dep.cell, city.population * dep.weight / weight_sum);
  }
}

}  // namespace

PopulationGrid synthesize_population(const EconomicProfile& profile,
                                     stats::Rng& rng,
                                     const SynthesisOptions& options) {
  PopulationGrid raster(geo::Grid(profile.extent, options.cell_arcmin));
  auto cities = synthesize_cities(profile, rng, options);

  for (const auto& city : cities) {
    const double sigma =
        options.min_city_sigma_miles +
        options.sigma_per_sqrt_person * std::sqrt(std::max(0.0, city.population));
    deposit_city(raster, city, sigma);
  }

  // Uniform rural background over every cell.
  const double rural_people =
      profile.population_millions * 1e6 * (1.0 - profile.urban_fraction);
  if (rural_people > 0.0 && raster.grid().cell_count() > 0) {
    const double per_cell =
        rural_people / static_cast<double>(raster.grid().cell_count());
    for (std::size_t flat = 0; flat < raster.grid().cell_count(); ++flat) {
      raster.deposit_cell(raster.grid().unflatten(flat), per_cell);
    }
  }

  raster.set_cities(std::move(cities));
  return raster;
}

WorldPopulation WorldPopulation::build(std::uint64_t seed,
                                       const SynthesisOptions& options) {
  return build(seed, world_profiles(), options);
}

WorldPopulation WorldPopulation::build(std::uint64_t seed,
                                       std::vector<EconomicProfile> profiles,
                                       const SynthesisOptions& options) {
  WorldPopulation world;
  world.profiles_ = std::move(profiles);
  stats::Rng rng(seed);
  world.grids_.reserve(world.profiles_.size());
  for (std::size_t i = 0; i < world.profiles_.size(); ++i) {
    stats::Rng child = rng.fork(i + 1);
    world.grids_.push_back(
        synthesize_population(world.profiles_[i], child, options));
  }
  return world;
}

double WorldPopulation::total_population() const noexcept {
  double total = 0.0;
  for (const auto& g : grids_) total += g.total_population();
  return total;
}

double WorldPopulation::population_in(const geo::Region& box) const noexcept {
  double total = 0.0;
  for (const auto& g : grids_) total += g.population_in(box);
  return total;
}

}  // namespace geonet::population
