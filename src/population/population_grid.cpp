#include "population/population_grid.h"

namespace geonet::population {

PopulationGrid::PopulationGrid(geo::Grid grid)
    : grid_(std::move(grid)), people_(grid_.cell_count(), 0.0) {}

void PopulationGrid::deposit(const geo::GeoPoint& p, double people) noexcept {
  if (const auto cell = grid_.cell_of(p)) {
    deposit_cell(*cell, people);
  }
}

void PopulationGrid::deposit_cell(const geo::CellIndex& cell,
                                  double people) noexcept {
  const std::size_t flat = grid_.flat_index(cell);
  if (flat < people_.size() && people > 0.0) {
    people_[flat] += people;
    total_ += people;
  }
}

double PopulationGrid::cell_population(const geo::CellIndex& cell) const noexcept {
  const std::size_t flat = grid_.flat_index(cell);
  return flat < people_.size() ? people_[flat] : 0.0;
}

double PopulationGrid::population_in(const geo::Region& box) const noexcept {
  double sum = 0.0;
  for (std::size_t flat = 0; flat < people_.size(); ++flat) {
    if (people_[flat] <= 0.0) continue;
    if (box.contains(grid_.cell_center(grid_.unflatten(flat)))) {
      sum += people_[flat];
    }
  }
  return sum;
}

std::optional<geo::GeoPoint> PopulationGrid::sample_location(
    stats::Rng& rng) const {
  if (total_ <= 0.0) return std::nullopt;
  if (!sampler_ || sampler_total_ != total_) {
    sampler_.emplace(people_);
    sampler_total_ = total_;
  }
  const std::size_t flat = sampler_->sample(rng);
  if (flat >= people_.size()) return std::nullopt;
  const geo::Region bounds = grid_.cell_bounds(grid_.unflatten(flat));
  return geo::GeoPoint{rng.uniform(bounds.south_deg, bounds.north_deg),
                       rng.uniform(bounds.west_deg, bounds.east_deg)};
}

}  // namespace geonet::population
