#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geo/region.h"

namespace geonet::population {

/// Demographic and Internet-development parameters for one world economic
/// region — the library's stand-in for the CIESIN population figures and
/// the Nua "How many online?" survey numbers quoted in Table III.
///
/// `extent` boxes are mutually disjoint so the synthetic world never
/// double-counts people; they sit inside (or around) the broader analysis
/// regions of `geo::regions`.
struct EconomicProfile {
  std::string name;
  geo::Region extent;
  double population_millions = 0.0;
  double online_millions = 0.0;
  /// Skitter interface count the paper maps into this region (Table III);
  /// used as the per-region infrastructure budget, scaled by the scenario.
  double paper_interfaces = 0.0;
  /// Superlinear exponent for router placement: expected routers in a
  /// patch scale as (patch population)^placement_alpha (Figure 2 slopes).
  double placement_alpha = 1.3;
  /// Number of synthetic cities seeding the urban population.
  std::size_t city_count = 120;
  /// Zipf exponent of city sizes.
  double zipf_s = 1.05;
  /// Fraction of people in cities; the rest is uniform rural background.
  double urban_fraction = 0.8;
  /// Decay scale (miles) of distance-sensitive link formation in this
  /// region; Figure 5 finds lambda = 1/slope of ~80 mi (Europe) to
  /// ~145 mi (US).
  double link_distance_scale_miles = 130.0;

  [[nodiscard]] double people_per_interface() const noexcept {
    return paper_interfaces > 0.0
               ? population_millions * 1e6 / paper_interfaces
               : 0.0;
  }
  [[nodiscard]] double online_per_interface() const noexcept {
    return paper_interfaces > 0.0 ? online_millions * 1e6 / paper_interfaces
                                  : 0.0;
  }
};

/// The seven Table III economic regions with the paper's population,
/// online-user, and interface figures.
std::vector<EconomicProfile> world_profiles();

/// Looks up a profile by name in world_profiles().
std::optional<EconomicProfile> profile_by_name(std::string_view name);

/// Sum of population/online/interface figures across world_profiles();
/// the synthetic counterpart of Table III's "World" row.
EconomicProfile world_totals();

}  // namespace geonet::population
