#pragma once

#include <optional>
#include <vector>

#include "geo/grid.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace geonet::population {

/// A synthetic city: the seed of an urban population cluster.
struct City {
  geo::GeoPoint center;
  double population = 0.0;
};

/// A gridded population raster over one region, the library's stand-in for
/// the CIESIN "Gridded Population of the World" dataset the paper uses.
///
/// Cell values are person counts (not densities). The raster also supports
/// population-weighted location sampling, which is how the ground-truth
/// generator decides where infrastructure demand exists.
class PopulationGrid {
 public:
  explicit PopulationGrid(geo::Grid grid);

  [[nodiscard]] const geo::Grid& grid() const noexcept { return grid_; }

  /// Adds `people` to the cell containing p (no-op outside the region).
  void deposit(const geo::GeoPoint& p, double people) noexcept;

  /// Adds `people` to the cell addressed directly.
  void deposit_cell(const geo::CellIndex& cell, double people) noexcept;

  [[nodiscard]] double cell_population(const geo::CellIndex& cell) const noexcept;
  [[nodiscard]] const std::vector<double>& cell_populations() const noexcept {
    return people_;
  }
  [[nodiscard]] double total_population() const noexcept { return total_; }

  /// Population inside an arbitrary box, approximated by cell centres.
  [[nodiscard]] double population_in(const geo::Region& box) const noexcept;

  /// Draws a location with probability proportional to cell population,
  /// uniformly positioned within the chosen cell. Returns nullopt when the
  /// raster is empty.
  [[nodiscard]] std::optional<geo::GeoPoint> sample_location(stats::Rng& rng) const;

  /// Records the cities used to build this raster (metadata for reports).
  void set_cities(std::vector<City> cities) { cities_ = std::move(cities); }
  [[nodiscard]] const std::vector<City>& cities() const noexcept { return cities_; }

 private:
  geo::Grid grid_;
  std::vector<double> people_;
  double total_ = 0.0;
  std::vector<City> cities_;
  mutable std::optional<stats::DiscreteSampler> sampler_;  // built lazily
  mutable double sampler_total_ = -1.0;  // total_ when sampler_ was built
};

}  // namespace geonet::population
