#pragma once

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace geonet::err {

/// Error taxonomy of the pipeline. Codes classify *what kind* of damage
/// occurred so callers can decide between retry, degrade, and abort:
///
///   kInvalidArgument   caller error (bad spec, bad flag) — never retried
///   kNotFound          missing file / region / dataset
///   kDataLoss          malformed or truncated records in an input
///   kUnavailable       a resource failed transiently (monitor down,
///                      router throttled) — the retry layer's domain
///   kResourceExhausted a budget ran out (--max-errors, quarantine cap)
///   kAborted           a phase gave up after exhausting its budget
///   kInternal          invariant violation; always a bug
enum class Code : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kDataLoss = 3,
  kUnavailable = 4,
  kResourceExhausted = 5,
  kAborted = 6,
  kInternal = 7,
};

[[nodiscard]] const char* code_name(Code code) noexcept;

/// A cheap success-or-diagnostic value. Ok carries no message and no
/// allocation; errors carry a code and a human-readable message.
class Status {
 public:
  Status() noexcept = default;
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return {}; }
  static Status invalid_argument(std::string m) {
    return {Code::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {Code::kNotFound, std::move(m)};
  }
  static Status data_loss(std::string m) {
    return {Code::kDataLoss, std::move(m)};
  }
  static Status unavailable(std::string m) {
    return {Code::kUnavailable, std::move(m)};
  }
  static Status resource_exhausted(std::string m) {
    return {Code::kResourceExhausted, std::move(m)};
  }
  static Status aborted(std::string m) {
    return {Code::kAborted, std::move(m)};
  }
  static Status internal(std::string m) {
    return {Code::kInternal, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == Code::kOk; }
  [[nodiscard]] Code code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "INVALID_ARGUMENT: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  Code code_ = Code::kOk;
  std::string message_;
};

/// Value-or-Status. The pipeline's replacement for bare std::optional
/// returns: a failed Result says *why* it failed, so callers can
/// quarantine, degrade, or surface the diagnostic instead of guessing.
template <typename T>
class Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  Result(Status status)                                                  // NOLINT
      : state_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(state_).is_ok() && "ok Status carries no value");
  }

  [[nodiscard]] bool is_ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& noexcept {
    assert(is_ok());
    return std::get<0>(state_);
  }
  [[nodiscard]] T& value() & noexcept {
    assert(is_ok());
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && noexcept {
    assert(is_ok());
    return std::get<0>(std::move(state_));
  }
  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? std::get<0>(state_) : std::move(fallback);
  }

  /// Status::ok() when holding a value.
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<1>(state_);
  }
  [[nodiscard]] const std::string& error_message() const noexcept {
    static const std::string empty;
    return is_ok() ? empty : std::get<1>(state_).message();
  }

 private:
  std::variant<T, Status> state_;
};

/// Counts damage against a cap. The degradation machinery records every
/// captured error here; once the budget is exhausted further phases are
/// skipped rather than risk compounding a broken run.
class ErrorBudget {
 public:
  explicit ErrorBudget(std::size_t max_errors) noexcept
      : max_errors_(max_errors) {}

  /// Charges one error; returns false once over budget.
  bool charge() noexcept { return ++errors_ <= max_errors_; }

  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::size_t max_errors() const noexcept { return max_errors_; }
  [[nodiscard]] bool exhausted() const noexcept {
    return errors_ > max_errors_;
  }

 private:
  std::size_t max_errors_;
  std::size_t errors_ = 0;
};

}  // namespace geonet::err
