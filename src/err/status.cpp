#include "err/status.h"

namespace geonet::err {

const char* code_name(Code code) noexcept {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kInvalidArgument: return "INVALID_ARGUMENT";
    case Code::kNotFound: return "NOT_FOUND";
    case Code::kDataLoss: return "DATA_LOSS";
    case Code::kUnavailable: return "UNAVAILABLE";
    case Code::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case Code::kAborted: return "ABORTED";
    case Code::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out = code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace geonet::err
