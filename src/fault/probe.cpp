#include "fault/probe.h"

#include <algorithm>

#include "obs/json.h"
#include "obs/metrics.h"

namespace geonet::fault {

void ProbeStats::merge(const ProbeStats& other) noexcept {
  probes += other.probes;
  attempts += other.attempts;
  retries += other.retries;
  losses += other.losses;
  giveups += other.giveups;
  simulated_wait_ms += other.simulated_wait_ms;
}

std::string ProbeStats::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("probes").value(probes);
  json.key("attempts").value(attempts);
  json.key("retries").value(retries);
  json.key("losses").value(losses);
  json.key("giveups").value(giveups);
  json.key("simulated_wait_ms").value(simulated_wait_ms);
  json.end_object();
  return json.str();
}

bool probe_with_retry(stats::Rng& rng, double answer_probability,
                      const ProbePolicy& policy, ProbeStats& stats) {
  static obs::Counter& attempts_metric =
      obs::MetricsRegistry::global().counter("probe.attempts");
  static obs::Counter& retries_metric =
      obs::MetricsRegistry::global().counter("probe.retries");
  static obs::Counter& losses_metric =
      obs::MetricsRegistry::global().counter("probe.losses");
  static obs::Counter& giveups_metric =
      obs::MetricsRegistry::global().counter("probe.giveups");

  ++stats.probes;
  const std::uint32_t max_attempts = std::max(1u, policy.max_attempts);
  double wait_ms = policy.timeout_ms;
  for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats.attempts;
    attempts_metric.add();
    if (attempt > 0) {
      ++stats.retries;
      retries_metric.add();
    }
    if (rng.bernoulli(answer_probability)) return true;
    ++stats.losses;
    losses_metric.add();
    stats.simulated_wait_ms += wait_ms;
    wait_ms *= policy.backoff;
  }
  ++stats.giveups;
  giveups_metric.add();
  return false;
}

}  // namespace geonet::fault
