#pragma once

#include <cstdint>
#include <string>

#include "stats/rng.h"

namespace geonet::fault {

/// Retry-with-timeout semantics of one probe, as CAIDA Skitter ran them:
/// a probe that gets no answer within the timeout is retried up to
/// max_attempts times, each wait growing by the backoff factor. The
/// simulators do not sleep — the waits are accounted as simulated time so
/// the cost of a lossy network shows up in the run report.
struct ProbePolicy {
  std::uint32_t max_attempts = 3;
  double timeout_ms = 1000.0;
  double backoff = 2.0;  ///< wait multiplier per retry
};

/// Per-run probe accounting (the `degradation.probes` report section).
/// Also mirrored into the obs metrics registry (probe.attempts,
/// probe.retries, probe.losses, probe.giveups).
struct ProbeStats {
  std::uint64_t probes = 0;    ///< probe_with_retry calls
  std::uint64_t attempts = 0;  ///< individual packet attempts
  std::uint64_t retries = 0;   ///< attempts beyond the first
  std::uint64_t losses = 0;    ///< attempts that timed out
  std::uint64_t giveups = 0;   ///< probes unanswered after all attempts
  double simulated_wait_ms = 0.0;  ///< time spent waiting on timeouts

  void merge(const ProbeStats& other) noexcept;
  [[nodiscard]] bool any() const noexcept { return probes != 0; }
  [[nodiscard]] std::string to_json() const;
};

/// Fires one probe at a target that answers each attempt independently
/// with `answer_probability`; retries per `policy`. Returns whether any
/// attempt was answered. Draws from `rng` once per attempt, so callers
/// passing a dedicated fault stream keep the fault-free path untouched.
bool probe_with_retry(stats::Rng& rng, double answer_probability,
                      const ProbePolicy& policy, ProbeStats& stats);

}  // namespace geonet::fault
