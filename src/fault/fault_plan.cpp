#include "fault/fault_plan.h"

#include <cstdlib>
#include <vector>

#include "obs/json.h"

namespace geonet::fault {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const auto pos = s.find(sep);
    if (pos == std::string_view::npos) {
      parts.push_back(trim(s));
      return parts;
    }
    parts.push_back(trim(s.substr(0, pos)));
    s.remove_prefix(pos + 1);
  }
}

err::Status bad(std::string_view clause, const std::string& what) {
  return err::Status::invalid_argument("fault clause '" + std::string(clause) +
                                       "': " + what);
}

bool parse_number(std::string_view text, double* out) {
  const std::string owned(text);
  char* end = nullptr;
  *out = std::strtod(owned.c_str(), &end);
  return end != owned.c_str() && *end == '\0';
}

struct KeyValue {
  std::string_view key;
  double value = 0.0;
};

}  // namespace

err::Result<FaultPlan> parse_fault_plan(std::string_view spec) {
  FaultPlan plan;
  for (const std::string_view clause : split(spec, ';')) {
    if (clause.empty()) continue;

    const auto colon = clause.find(':');
    const auto equals = clause.find('=');
    // 'seed=7' — the one plan-level setting.
    if (equals != std::string_view::npos &&
        (colon == std::string_view::npos || equals < colon)) {
      if (trim(clause.substr(0, equals)) != "seed") {
        return bad(clause, "only 'seed=<n>' may appear without a ':'");
      }
      double value = 0.0;
      if (!parse_number(trim(clause.substr(equals + 1)), &value) ||
          value < 0.0) {
        return bad(clause, "seed must be a non-negative integer");
      }
      plan.seed = static_cast<std::uint64_t>(value);
      continue;
    }

    const std::string_view name =
        trim(colon == std::string_view::npos ? clause : clause.substr(0, colon));
    std::vector<KeyValue> kvs;
    if (colon != std::string_view::npos) {
      for (const std::string_view kv : split(clause.substr(colon + 1), ',')) {
        if (kv.empty()) continue;
        const auto eq = kv.find('=');
        if (eq == std::string_view::npos) {
          return bad(clause, "expected key=value, got '" + std::string(kv) + "'");
        }
        KeyValue parsed;
        parsed.key = trim(kv.substr(0, eq));
        if (!parse_number(trim(kv.substr(eq + 1)), &parsed.value)) {
          return bad(clause, "bad number for '" + std::string(parsed.key) + "'");
        }
        kvs.push_back(parsed);
      }
    }

    const auto fraction = [&](double v, std::string_view key,
                              err::Status* status) {
      if (v < 0.0 || v > 1.0) {
        *status = bad(clause, "'" + std::string(key) + "' must be in [0,1]");
      }
      return v;
    };
    err::Status range = err::Status::ok();

    if (name == "monitor-outage") {
      MonitorOutageFault f = plan.monitor_outage.value_or(MonitorOutageFault{});
      for (const KeyValue& kv : kvs) {
        if (kv.key == "count") {
          if (kv.value < 0.0) return bad(clause, "'count' must be >= 0");
          f.count = static_cast<std::size_t>(kv.value);
        } else if (kv.key == "at") {
          f.at_fraction = fraction(kv.value, kv.key, &range);
        } else {
          return bad(clause, "unknown key '" + std::string(kv.key) + "'");
        }
      }
      plan.monitor_outage = f;
    } else if (name == "throttle") {
      ThrottleFault f = plan.throttle.value_or(ThrottleFault{});
      for (const KeyValue& kv : kvs) {
        if (kv.key == "frac") {
          f.router_fraction = fraction(kv.value, kv.key, &range);
        } else if (kv.key == "rate") {
          f.answer_rate = fraction(kv.value, kv.key, &range);
        } else {
          return bad(clause, "unknown key '" + std::string(kv.key) + "'");
        }
      }
      plan.throttle = f;
    } else if (name == "truncate") {
      TruncateFault f = plan.truncate.value_or(TruncateFault{});
      for (const KeyValue& kv : kvs) {
        if (kv.key == "prob") {
          f.probability = fraction(kv.value, kv.key, &range);
        } else if (kv.key == "min-hops") {
          if (kv.value < 1.0) return bad(clause, "'min-hops' must be >= 1");
          f.min_hops = static_cast<std::size_t>(kv.value);
        } else {
          return bad(clause, "unknown key '" + std::string(kv.key) + "'");
        }
      }
      plan.truncate = f;
    } else if (name == "probe-loss") {
      ProbeLossFault f = plan.probe_loss.value_or(ProbeLossFault{});
      for (const KeyValue& kv : kvs) {
        if (kv.key == "prob") {
          f.burst_probability = fraction(kv.value, kv.key, &range);
        } else if (kv.key == "burst") {
          if (kv.value < 1.0) return bad(clause, "'burst' must be >= 1");
          f.mean_burst_length = kv.value;
        } else {
          return bad(clause, "unknown key '" + std::string(kv.key) + "'");
        }
      }
      plan.probe_loss = f;
    } else if (name == "geo-corrupt") {
      GeoCorruptFault f = plan.geo_corrupt.value_or(GeoCorruptFault{});
      for (const KeyValue& kv : kvs) {
        if (kv.key == "prob") {
          f.probability = fraction(kv.value, kv.key, &range);
        } else if (kv.key == "garble") {
          f.garble_fraction = fraction(kv.value, kv.key, &range);
        } else {
          return bad(clause, "unknown key '" + std::string(kv.key) + "'");
        }
      }
      plan.geo_corrupt = f;
    } else if (name == "cache-corrupt") {
      CacheCorruptFault f = plan.cache_corrupt.value_or(CacheCorruptFault{});
      for (const KeyValue& kv : kvs) {
        if (kv.key == "prob") {
          f.probability = fraction(kv.value, kv.key, &range);
        } else {
          return bad(clause, "unknown key '" + std::string(kv.key) + "'");
        }
      }
      plan.cache_corrupt = f;
    } else {
      return bad(clause, "unknown fault '" + std::string(name) + "'");
    }
    if (!range.is_ok()) return range;
  }
  return plan;
}

std::string FaultPlan::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("seed").value(static_cast<std::uint64_t>(seed));
  if (monitor_outage) {
    json.key("monitor_outage").begin_object();
    json.key("count").value(static_cast<std::uint64_t>(monitor_outage->count));
    json.key("at").value(monitor_outage->at_fraction);
    json.end_object();
  }
  if (throttle) {
    json.key("throttle").begin_object();
    json.key("frac").value(throttle->router_fraction);
    json.key("rate").value(throttle->answer_rate);
    json.end_object();
  }
  if (truncate) {
    json.key("truncate").begin_object();
    json.key("prob").value(truncate->probability);
    json.key("min_hops").value(static_cast<std::uint64_t>(truncate->min_hops));
    json.end_object();
  }
  if (probe_loss) {
    json.key("probe_loss").begin_object();
    json.key("prob").value(probe_loss->burst_probability);
    json.key("burst").value(probe_loss->mean_burst_length);
    json.end_object();
  }
  if (geo_corrupt) {
    json.key("geo_corrupt").begin_object();
    json.key("prob").value(geo_corrupt->probability);
    json.key("garble").value(geo_corrupt->garble_fraction);
    json.end_object();
  }
  if (cache_corrupt) {
    json.key("cache_corrupt").begin_object();
    json.key("prob").value(cache_corrupt->probability);
    json.end_object();
  }
  json.end_object();
  return json.str();
}

void FaultStats::merge(const FaultStats& other) noexcept {
  monitors_killed += other.monitors_killed;
  destinations_skipped += other.destinations_skipped;
  routers_throttled += other.routers_throttled;
  traces_truncated += other.traces_truncated;
  probes_lost += other.probes_lost;
  geo_corrupted += other.geo_corrupted;
  geo_garbled += other.geo_garbled;
}

bool FaultStats::any() const noexcept {
  return monitors_killed != 0 || destinations_skipped != 0 ||
         routers_throttled != 0 || traces_truncated != 0 || probes_lost != 0 ||
         geo_corrupted != 0 || geo_garbled != 0;
}

std::string FaultStats::to_json() const {
  obs::JsonWriter json;
  json.begin_object();
  json.key("monitors_killed").value(monitors_killed);
  json.key("destinations_skipped").value(destinations_skipped);
  json.key("routers_throttled").value(routers_throttled);
  json.key("traces_truncated").value(traces_truncated);
  json.key("probes_lost").value(probes_lost);
  json.key("geo_corrupted").value(geo_corrupted);
  json.key("geo_garbled").value(geo_garbled);
  json.end_object();
  return json.str();
}

}  // namespace geonet::fault
