#include "fault/geo_faults.h"

#include <algorithm>

#include "stats/rng.h"

namespace geonet::fault {

std::optional<geo::GeoPoint> GeoCorruptor::corrupt(std::uint64_t address_key,
                                                   const geo::GeoPoint& answer,
                                                   FaultStats& stats) const {
  std::uint64_t h = seed_ ^ (0xc2b2ae3d27d4eb4fULL * (address_key + 1));
  stats::Rng rng(stats::splitmix64(h));
  if (!rng.bernoulli(fault_.probability)) return std::nullopt;

  if (rng.bernoulli(fault_.garble_fraction)) {
    ++stats.geo_garbled;
    return geo::GeoPoint{rng.uniform(-90.0, 90.0), rng.uniform(-180.0, 180.0)};
  }
  ++stats.geo_corrupted;
  switch (rng.uniform_index(3)) {
    case 0:  // longitude sign flip (the classic W/E bug)
      return geo::GeoPoint{answer.lat_deg, -answer.lon_deg};
    case 1:  // latitude sign flip (N/S)
      return geo::GeoPoint{-answer.lat_deg, answer.lon_deg};
    default:  // lat/lon swapped; clamp latitude into range
      return geo::GeoPoint{std::clamp(answer.lon_deg, -90.0, 90.0),
                           answer.lat_deg};
  }
}

}  // namespace geonet::fault
