#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "err/status.h"

namespace geonet::fault {

/// Deterministic, seed-driven fault injection for the measurement
/// pipeline. A FaultPlan describes *which* realistic failures a run
/// suffers; the simulators consult it through forked RNG streams so that
/// (a) the same plan + seed reproduces the same damage bit-for-bit and
/// (b) a null/empty plan leaves the fault-free path untouched.
///
/// Spec grammar (`--faults <spec>`, see docs/robustness.md):
///
///   spec    := clause ( ';' clause )*
///   clause  := name [ ':' kv ( ',' kv )* ] | 'seed' '=' integer
///   kv      := key '=' number
///
/// Clauses (all keys optional, defaults in brackets):
///   monitor-outage : count [1]      monitors die mid-run
///                    at    [0.5]    fraction of their list probed before dying
///   throttle       : frac  [0.1]    fraction of routers that rate-limit ICMP
///                    rate  [0.25]   per-attempt answer probability
///   truncate       : prob  [0.02]   per-trace truncation probability
///                    min-hops [3]   earliest hop a trace can be cut at
///   probe-loss     : prob  [0.01]   per-destination burst-start probability
///                    burst [20]     mean burst length (whole probes lost)
///   geo-corrupt    : prob  [0.01]   per-address corruption probability
///                    garble [0.5]   fraction of corruptions that are pure
///                                   garbage (vs hemisphere/sign flips)
///   cache-corrupt  : prob  [1.0]    per-entry artifact-cache bit-flip
///                                   probability (store layer; exercises
///                                   checksum detection + recompute)
///
/// Example: "monitor-outage:count=3,at=0.5;throttle:frac=0.1,rate=0.3"

/// N monitors go dark partway through their destination lists — the
/// Skitter-monitor outages the paper's data collection lived with.
struct MonitorOutageFault {
  std::size_t count = 1;
  double at_fraction = 0.5;  ///< in [0,1]
};

/// ICMP rate limiting: beyond the static hop_response_rate trait, a
/// random fraction of routers answers each probe attempt with only
/// `answer_rate` probability. Retries (ProbePolicy) can recover these.
struct ThrottleFault {
  double router_fraction = 0.1;
  double answer_rate = 0.25;
};

/// A trace is cut short at a random hop (>= min_hops): loops detected,
/// gap limits hit, or the probe train dying inside the network.
struct TruncateFault {
  double probability = 0.02;
  std::size_t min_hops = 3;
};

/// Bursty probe loss: once a burst starts, whole probes (entire
/// destination traces) are lost for a geometric run of destinations.
struct ProbeLossFault {
  double burst_probability = 0.01;
  double mean_burst_length = 20.0;
};

/// Corrupted geolocation answers: a stale or garbled database entry
/// replaces the true answer with either a hemisphere/sign flip or a
/// uniformly random point. Deterministic per address, like a real broken
/// database row.
struct GeoCorruptFault {
  double probability = 0.01;
  double garble_fraction = 0.5;
};

/// Artifact-cache damage: each cache entry read under this fault has a
/// deterministic (per entry, per seed) chance of a single-bit flip before
/// validation — media rot in miniature. The store layer must detect every
/// flip via section checksums and fall back to recomputation; see
/// store::ArtifactCache::set_corruption.
struct CacheCorruptFault {
  double probability = 1.0;
};

struct FaultPlan {
  std::optional<MonitorOutageFault> monitor_outage;
  std::optional<ThrottleFault> throttle;
  std::optional<TruncateFault> truncate;
  std::optional<ProbeLossFault> probe_loss;
  std::optional<GeoCorruptFault> geo_corrupt;
  std::optional<CacheCorruptFault> cache_corrupt;
  /// Fault decisions derive from this seed alone (not the simulation
  /// seeds), so the same damage pattern can be replayed across scenarios.
  std::uint64_t seed = 0xFA17;

  [[nodiscard]] bool empty() const noexcept {
    return !monitor_outage && !throttle && !truncate && !probe_loss &&
           !geo_corrupt && !cache_corrupt;
  }

  /// JSON echo of the plan (the `degradation.plan` report field).
  [[nodiscard]] std::string to_json() const;
};

/// Parses the spec grammar above. Unknown clause or key names, malformed
/// numbers, and out-of-range values are kInvalidArgument with a
/// diagnostic naming the offending clause.
err::Result<FaultPlan> parse_fault_plan(std::string_view spec);

/// Damage bookkeeping filled by the simulators; the counts the
/// `degradation.faults` report section carries.
struct FaultStats {
  std::uint64_t monitors_killed = 0;
  std::uint64_t destinations_skipped = 0;  ///< unprobed due to dead monitors
  std::uint64_t routers_throttled = 0;
  std::uint64_t traces_truncated = 0;
  std::uint64_t probes_lost = 0;           ///< whole probes lost in bursts
  std::uint64_t geo_corrupted = 0;         ///< flipped/offset answers
  std::uint64_t geo_garbled = 0;           ///< answers replaced by noise

  void merge(const FaultStats& other) noexcept;
  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] std::string to_json() const;
};

}  // namespace geonet::fault
