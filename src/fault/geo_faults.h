#pragma once

#include <cstdint>
#include <optional>

#include "fault/fault_plan.h"
#include "geo/geo_point.h"

namespace geonet::fault {

/// Applies a GeoCorruptFault to geolocation answers. Corruption is a
/// pure function of (seed, address key): the same broken database row
/// answers the same wrong way every time, exactly like a real stale or
/// garbled geolocation entry. Two damage modes:
///   * corrupted — a hemisphere/sign flip or lat/lon swap: plausible
///     coordinates, wrong place (classic W/E longitude-sign bugs);
///   * garbled   — a uniformly random point: the row is noise.
class GeoCorruptor {
 public:
  GeoCorruptor(const GeoCorruptFault& fault, std::uint64_t seed) noexcept
      : fault_(fault), seed_(seed) {}

  /// The corrupted answer for this address, or nullopt when the address
  /// is untouched (the common case). `answer` is the mapper's honest
  /// reply. Updates `stats` when corruption fires.
  [[nodiscard]] std::optional<geo::GeoPoint> corrupt(
      std::uint64_t address_key, const geo::GeoPoint& answer,
      FaultStats& stats) const;

 private:
  GeoCorruptFault fault_;
  std::uint64_t seed_;
};

}  // namespace geonet::fault
