#include "generators/ba_gen.h"

#include <algorithm>
#include <vector>

#include "stats/rng.h"

namespace geonet::generators {

net::AnnotatedGraph generate_barabasi_albert(
    const geo::Region& region, const BarabasiAlbertOptions& options) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "BarabasiAlbert");
  stats::Rng rng(options.seed);

  const std::size_t m = std::max<std::size_t>(1, options.edges_per_node);
  const std::size_t n = std::max(options.node_count, m + 1);

  const auto add_node = [&]() {
    return graph.add_node(
        {net::Ipv4Addr{static_cast<std::uint32_t>(0x03000000 + graph.node_count())},
         {rng.uniform(region.south_deg, region.north_deg),
          rng.uniform(region.west_deg, region.east_deg)},
         1});
  };

  // Degree-proportional sampling via the repeated-endpoints trick: each
  // edge endpoint appears once in this list.
  std::vector<std::uint32_t> endpoints;

  // Seed clique of m+1 nodes.
  for (std::size_t i = 0; i <= m; ++i) add_node();
  for (std::uint32_t i = 0; i <= m; ++i) {
    for (std::uint32_t j = i + 1; j <= m; ++j) {
      if (graph.add_edge(i, j)) {
        endpoints.push_back(i);
        endpoints.push_back(j);
      }
    }
  }

  while (graph.node_count() < n) {
    const std::uint32_t fresh = add_node();
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < m && attempts < 50 * m) {
      ++attempts;
      const std::uint32_t target =
          endpoints[rng.uniform_index(endpoints.size())];
      if (graph.add_edge(fresh, target)) {
        endpoints.push_back(fresh);
        endpoints.push_back(target);
        ++added;
      }
    }
  }
  return graph;
}

}  // namespace geonet::generators
