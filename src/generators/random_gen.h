#pragma once

#include <cstdint>

#include "geo/region.h"
#include "net/annotated_graph.h"

namespace geonet::generators {

/// Erdos-Renyi G(n, p): every pair connected with fixed probability,
/// blind to geography. The paper's Section II notes such graphs are
/// typically disconnected at sparse densities — reproduced in the tests.
struct ErdosRenyiOptions {
  std::size_t node_count = 1000;
  double edge_probability = 0.002;
  std::uint64_t seed = 2;
};

net::AnnotatedGraph generate_erdos_renyi(const geo::Region& region,
                                         const ErdosRenyiOptions& options = {});

}  // namespace geonet::generators
