#include "generators/hierarchical_gen.h"

#include <vector>

#include "geo/distance.h"
#include "stats/rng.h"

namespace geonet::generators {

namespace {

geo::GeoPoint scatter(stats::Rng& rng, const geo::GeoPoint& center,
                      double radius_miles, const geo::Region& clip) {
  const geo::GeoPoint p = geo::destination_point(
      center, rng.uniform(0.0, 360.0), rng.uniform(0.0, radius_miles));
  return clip.contains(p) ? p : center;
}

}  // namespace

net::AnnotatedGraph generate_transit_stub(const geo::Region& region,
                                          const TransitStubOptions& options) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "TransitStub");
  stats::Rng rng(options.seed);
  // Transit domains own ASNs 1..transit_domains; stub ASNs follow.
  std::uint32_t next_stub_asn =
      static_cast<std::uint32_t>(options.transit_domains) + 1;
  std::uint32_t next_addr = 0x05000000;

  const auto add_node = [&](const geo::GeoPoint& where, std::uint32_t asn) {
    return graph.add_node({net::Ipv4Addr{next_addr++}, where, asn});
  };

  // A connected clique-ish backbone of transit-domain gateways.
  struct Domain {
    std::vector<std::uint32_t> nodes;
  };
  std::vector<Domain> transits;

  for (std::size_t t = 0; t < options.transit_domains; ++t) {
    const auto asn = static_cast<std::uint32_t>(t + 1);
    const geo::GeoPoint center{rng.uniform(region.south_deg, region.north_deg),
                               rng.uniform(region.west_deg, region.east_deg)};
    Domain domain;
    for (std::size_t i = 0; i < options.transit_nodes_per_domain; ++i) {
      domain.nodes.push_back(add_node(
          scatter(rng, center, options.transit_radius_miles, region), asn));
    }
    // Ring + random chords inside the transit domain.
    for (std::size_t i = 0; i < domain.nodes.size(); ++i) {
      graph.add_edge(domain.nodes[i],
                     domain.nodes[(i + 1) % domain.nodes.size()]);
      if (rng.bernoulli(options.extra_edge_probability) &&
          domain.nodes.size() > 2) {
        graph.add_edge(domain.nodes[i],
                       domain.nodes[rng.uniform_index(domain.nodes.size())]);
      }
    }
    // Connect this transit domain to a previous one (backbone stays
    // connected), plus occasional extra transit-transit edges.
    if (!transits.empty()) {
      const Domain& peer = transits[rng.uniform_index(transits.size())];
      graph.add_edge(domain.nodes[rng.uniform_index(domain.nodes.size())],
                     peer.nodes[rng.uniform_index(peer.nodes.size())]);
      if (rng.bernoulli(0.5) && transits.size() > 1) {
        const Domain& other = transits[rng.uniform_index(transits.size())];
        graph.add_edge(domain.nodes[rng.uniform_index(domain.nodes.size())],
                       other.nodes[rng.uniform_index(other.nodes.size())]);
      }
    }

    // Stub domains hanging off this transit's nodes.
    for (std::size_t s = 0; s < options.stubs_per_transit; ++s) {
      const std::uint32_t stub_asn = next_stub_asn++;
      const std::uint32_t gateway =
          domain.nodes[rng.uniform_index(domain.nodes.size())];
      const geo::GeoPoint stub_center = scatter(
          rng, graph.node(gateway).location,
          options.transit_radius_miles * 0.5, region);
      const std::size_t count = std::max<std::size_t>(
          2, rng.poisson(static_cast<double>(options.stub_nodes_mean)));
      std::vector<std::uint32_t> stub_nodes;
      for (std::size_t i = 0; i < count; ++i) {
        stub_nodes.push_back(add_node(
            scatter(rng, stub_center, options.stub_radius_miles, region),
            stub_asn));
      }
      // Random tree inside the stub + extras.
      for (std::size_t i = 1; i < stub_nodes.size(); ++i) {
        graph.add_edge(stub_nodes[i], stub_nodes[rng.uniform_index(i)]);
        if (rng.bernoulli(options.extra_edge_probability)) {
          graph.add_edge(stub_nodes[i],
                         stub_nodes[rng.uniform_index(stub_nodes.size())]);
        }
      }
      // The stub's uplink into its transit.
      graph.add_edge(stub_nodes[rng.uniform_index(stub_nodes.size())],
                     gateway);
    }
    transits.push_back(std::move(domain));
  }
  return graph;
}

}  // namespace geonet::generators
