#pragma once

#include <cstdint>

#include "geo/region.h"
#include "net/annotated_graph.h"

namespace geonet::generators {

/// GT-ITM/Tiers-style transit-stub generator — the "structural" school of
/// topology generation the paper's Section II describes: an explicit
/// hierarchy of transit domains, each serving several stub domains.
/// Unlike the originals, domains here are placed *geographically* (each
/// domain gets a random centre and a radius), making this the midpoint
/// between purely structural models and the paper's geography-first
/// vision. Every domain is labelled as its own AS.
struct TransitStubOptions {
  std::size_t transit_domains = 4;
  std::size_t transit_nodes_per_domain = 8;
  std::size_t stubs_per_transit = 6;
  std::size_t stub_nodes_mean = 10;
  double stub_radius_miles = 40.0;
  double transit_radius_miles = 600.0;
  double extra_edge_probability = 0.25;  ///< redundancy inside domains
  std::uint64_t seed = 6;
};

net::AnnotatedGraph generate_transit_stub(const geo::Region& region,
                                          const TransitStubOptions& options = {});

}  // namespace geonet::generators
