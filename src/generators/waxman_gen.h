#pragma once

#include <cstdint>

#include "geo/region.h"
#include "net/annotated_graph.h"

namespace geonet::generators {

/// The classic Waxman model (Waxman 1988), the baseline whose two
/// assumptions the paper tests: (1) nodes uniform at random in the plane
/// — which the paper refutes — and (2) connection probability decaying
/// exponentially with distance — which the paper supports.
struct WaxmanOptions {
  std::size_t node_count = 1000;
  double alpha = 0.15;  ///< distance sensitivity, (0, 1]
  double beta = 0.2;    ///< link density, (0, 1]
  std::uint64_t seed = 1;
};

/// Generates a Waxman graph over `region`: nodes uniform in the box,
/// P[link] = beta * exp(-d / (alpha * L)) with L the maximum node
/// separation. All nodes share one synthetic AS (the model has none).
net::AnnotatedGraph generate_waxman(const geo::Region& region,
                                    const WaxmanOptions& options = {});

}  // namespace geonet::generators
