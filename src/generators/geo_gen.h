#pragma once

#include <cstdint>
#include <vector>

#include "net/annotated_graph.h"
#include "population/synth_population.h"
#include "synth/ground_truth.h"

namespace geonet::generators {

/// The "next generation" topology generator the paper's conclusion calls
/// for: router-level graphs annotated with geographic locations, AS
/// identifiers, and link latencies, grown from population data with
/// distance-sensitive link formation.
///
/// The growth engine is the same code that builds the measurement
/// substrate (synth::GroundTruth); here it is exposed as a generator whose
/// *output* is the annotated graph itself rather than an object to probe.
struct GeoGeneratorOptions {
  /// Approximate router count to generate.
  std::size_t router_count = 20000;
  synth::GroundTruthOptions growth;  ///< scale/seed fields are derived
  std::uint64_t seed = 4;
};

struct GeneratedTopology {
  net::AnnotatedGraph graph;               ///< locations + AS labels
  std::vector<double> link_latency_ms;     ///< parallel to graph.edges()
};

/// Generates an annotated router-level topology over the synthetic world.
GeneratedTopology generate_geo_topology(
    const population::WorldPopulation& world,
    const GeoGeneratorOptions& options = {});

/// Projects a ground truth into the generator output format (truth
/// locations and AS labels, no measurement distortion). Useful to compare
/// "what the generator built" against "what a measurement would see".
GeneratedTopology topology_from_truth(const synth::GroundTruth& truth);

}  // namespace geonet::generators
