#include "generators/waxman_gen.h"

#include <cmath>
#include <vector>

#include "geo/distance.h"
#include "stats/rng.h"

namespace geonet::generators {

net::AnnotatedGraph generate_waxman(const geo::Region& region,
                                    const WaxmanOptions& options) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "Waxman");
  stats::Rng rng(options.seed);

  std::vector<geo::GeoPoint> points;
  points.reserve(options.node_count);
  for (std::size_t i = 0; i < options.node_count; ++i) {
    const geo::GeoPoint p{rng.uniform(region.south_deg, region.north_deg),
                          rng.uniform(region.west_deg, region.east_deg)};
    points.push_back(p);
    graph.add_node({net::Ipv4Addr{static_cast<std::uint32_t>(0x01000000 + i)},
                    p, 1});
  }

  // L = maximum distance between nodes; the box diagonal bounds it and is
  // the conventional stand-in.
  const double max_distance = region.diagonal_miles();
  for (std::uint32_t i = 0; i < points.size(); ++i) {
    for (std::uint32_t j = i + 1; j < points.size(); ++j) {
      const double d = geo::great_circle_miles(points[i], points[j]);
      const double p =
          options.beta * std::exp(-d / (options.alpha * max_distance));
      if (rng.bernoulli(p)) graph.add_edge(i, j);
    }
  }
  return graph;
}

}  // namespace geonet::generators
