#include "generators/random_gen.h"

#include "stats/rng.h"

namespace geonet::generators {

net::AnnotatedGraph generate_erdos_renyi(const geo::Region& region,
                                         const ErdosRenyiOptions& options) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "ErdosRenyi");
  stats::Rng rng(options.seed);

  for (std::size_t i = 0; i < options.node_count; ++i) {
    graph.add_node({net::Ipv4Addr{static_cast<std::uint32_t>(0x02000000 + i)},
                    {rng.uniform(region.south_deg, region.north_deg),
                     rng.uniform(region.west_deg, region.east_deg)},
                    1});
  }
  for (std::uint32_t i = 0; i < options.node_count; ++i) {
    for (std::uint32_t j = i + 1; j < options.node_count; ++j) {
      if (rng.bernoulli(options.edge_probability)) graph.add_edge(i, j);
    }
  }
  return graph;
}

}  // namespace geonet::generators
