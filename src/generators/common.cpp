#include "generators/common.h"

#include "geo/distance.h"

namespace geonet::generators {

std::vector<double> link_latencies_ms(const net::AnnotatedGraph& graph,
                                      double circuity) {
  std::vector<double> out;
  out.reserve(graph.edge_count());
  for (const auto& edge : graph.edges()) {
    const double miles = geo::great_circle_miles(graph.node(edge.a).location,
                                                 graph.node(edge.b).location);
    out.push_back(geo::fiber_latency_ms(miles, circuity));
  }
  return out;
}

}  // namespace geonet::generators
