#include "generators/geo_gen.h"

#include "generators/common.h"
#include "obs/trace.h"
#include "population/economic_profile.h"

namespace geonet::generators {

GeneratedTopology topology_from_truth(const synth::GroundTruth& truth) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "GeoGenerator");
  const net::Topology& topology = truth.topology();

  for (net::RouterId r = 0; r < topology.router_count(); ++r) {
    const net::Router& router = topology.router(r);
    const net::Ipv4Addr addr =
        router.interfaces.empty()
            ? net::Ipv4Addr{0}
            : topology.interface(router.interfaces.front()).addr;
    graph.add_node({addr, router.location, router.asn});
  }
  for (const net::Link& link : topology.links()) {
    graph.add_edge(topology.interface(link.if_a).router,
                   topology.interface(link.if_b).router);
  }

  GeneratedTopology out{std::move(graph), {}};
  out.link_latency_ms = link_latencies_ms(out.graph);
  return out;
}

GeneratedTopology generate_geo_topology(
    const population::WorldPopulation& world,
    const GeoGeneratorOptions& options) {
  const obs::Span span("generators/geo_topology");
  synth::GroundTruthOptions growth = options.growth;
  growth.seed = options.seed;

  // Convert the requested router count into the interface-budget scale the
  // growth engine consumes.
  const double paper_interfaces =
      population::world_totals().paper_interfaces;
  growth.interface_scale = static_cast<double>(options.router_count) *
                           growth.interfaces_per_router / paper_interfaces;

  const synth::GroundTruth truth = synth::GroundTruth::build(world, growth);
  return topology_from_truth(truth);
}

}  // namespace geonet::generators
