#pragma once

#include <vector>

#include "net/annotated_graph.h"

namespace geonet::generators {

/// Per-edge propagation latencies derived from node geography — the
/// annotation the paper argues becomes "a straightforward matter" once
/// topologies carry locations (Section VII). Parallel to graph.edges().
std::vector<double> link_latencies_ms(const net::AnnotatedGraph& graph,
                                      double circuity = 1.5);

}  // namespace geonet::generators
