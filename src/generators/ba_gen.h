#pragma once

#include <cstdint>

#include "geo/region.h"
#include "net/annotated_graph.h"

namespace geonet::generators {

/// Barabasi-Albert preferential attachment: the degree-distribution-first
/// school of topology generation the paper contrasts with geographic
/// models. Node locations are uniform (the model carries no geometry).
struct BarabasiAlbertOptions {
  std::size_t node_count = 1000;
  std::size_t edges_per_node = 2;  ///< m: links added with each new node
  std::uint64_t seed = 3;
};

net::AnnotatedGraph generate_barabasi_albert(
    const geo::Region& region, const BarabasiAlbertOptions& options = {});

}  // namespace geonet::generators
