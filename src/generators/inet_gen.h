#pragma once

#include <cstdint>

#include "geo/region.h"
#include "net/annotated_graph.h"

namespace geonet::generators {

/// Inet-style degree-sequence generator (Jin, Chen & Jamin), another of
/// the degree-distribution-first baselines the paper's Section II cites:
/// draw a power-law degree sequence, connect highest-degree nodes into a
/// core, then attach remaining stubs degree-proportionally. Locations are
/// uniform (the model has no geometry).
struct InetOptions {
  std::size_t node_count = 1000;
  double degree_exponent = 2.2;   ///< P[deg = k] ~ k^-exponent
  std::size_t max_degree = 0;     ///< 0 = n/3
  std::uint64_t seed = 5;
};

net::AnnotatedGraph generate_inet(const geo::Region& region,
                                  const InetOptions& options = {});

}  // namespace geonet::generators
