#include "generators/inet_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"

namespace geonet::generators {

net::AnnotatedGraph generate_inet(const geo::Region& region,
                                  const InetOptions& options) {
  net::AnnotatedGraph graph(net::NodeKind::kRouter, "Inet");
  stats::Rng rng(options.seed);
  const std::size_t n = std::max<std::size_t>(options.node_count, 4);
  const std::size_t max_degree =
      options.max_degree > 0 ? options.max_degree : n / 3;

  for (std::size_t i = 0; i < n; ++i) {
    graph.add_node({net::Ipv4Addr{static_cast<std::uint32_t>(0x04000000 + i)},
                    {rng.uniform(region.south_deg, region.north_deg),
                     rng.uniform(region.west_deg, region.east_deg)},
                    1});
  }

  // Power-law target degrees, minimum 1.
  std::vector<std::size_t> target(n);
  for (auto& d : target) {
    d = std::clamp<std::size_t>(
        static_cast<std::size_t>(stats::pareto(rng, 1.0,
                                               options.degree_exponent - 1.0)),
        1, max_degree);
  }
  // Sort descending: node 0 gets the largest degree (the Inet "core").
  std::sort(target.rbegin(), target.rend());

  std::vector<std::size_t> residual = target;
  const auto connect = [&](std::uint32_t a, std::uint32_t b) {
    if (graph.add_edge(a, b)) {
      if (residual[a] > 0) --residual[a];
      if (residual[b] > 0) --residual[b];
      return true;
    }
    return false;
  };

  // Core clique among the few highest-degree nodes.
  const std::size_t core = std::min<std::size_t>(3, n);
  for (std::uint32_t i = 0; i < core; ++i) {
    for (std::uint32_t j = i + 1; j < core; ++j) connect(i, j);
  }

  // Attach every other node to an already-attached target with
  // probability proportional to its residual degree.
  for (std::uint32_t v = static_cast<std::uint32_t>(core); v < n; ++v) {
    std::vector<double> weights(v, 0.0);
    for (std::uint32_t u = 0; u < v; ++u) {
      weights[u] = static_cast<double>(residual[u]) + 0.05;
    }
    const std::size_t u = stats::weighted_index(rng, weights);
    connect(v, static_cast<std::uint32_t>(u < v ? u : 0));
  }

  // Second pass: satisfy remaining residual degrees by matching.
  std::vector<std::uint32_t> stubs;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < residual[i]; ++k) stubs.push_back(i);
  }
  rng.shuffle(std::span<std::uint32_t>(stubs));
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    connect(stubs[i], stubs[i + 1]);
  }
  return graph;
}

}  // namespace geonet::generators
