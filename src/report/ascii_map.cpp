#include "report/ascii_map.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace geonet::report {

std::string ascii_density_map(std::span<const geo::GeoPoint> points,
                              const geo::Region& region, std::size_t width) {
  width = std::max<std::size_t>(width, 8);
  // Terminal character cells are ~2x taller than wide.
  const double aspect = region.lat_span_deg() / region.lon_span_deg();
  const auto height = std::max<std::size_t>(
      3, static_cast<std::size_t>(static_cast<double>(width) * aspect * 0.5));

  std::vector<std::size_t> counts(width * height, 0);
  for (const auto& p : points) {
    if (!region.contains(p)) continue;
    auto col = static_cast<std::size_t>((p.lon_deg - region.west_deg) /
                                        region.lon_span_deg() *
                                        static_cast<double>(width));
    auto row = static_cast<std::size_t>((p.lat_deg - region.south_deg) /
                                        region.lat_span_deg() *
                                        static_cast<double>(height));
    col = std::min(col, width - 1);
    row = std::min(row, height - 1);
    ++counts[row * width + col];
  }

  const std::size_t max_count =
      *std::max_element(counts.begin(), counts.end());
  static constexpr char kShades[] = " .:-=+*#%@";
  constexpr std::size_t kLevels = sizeof(kShades) - 2;  // last index

  std::string out;
  out.reserve((width + 1) * height);
  // Row 0 is the southern edge; print north first.
  for (std::size_t row = height; row-- > 0;) {
    for (std::size_t col = 0; col < width; ++col) {
      const std::size_t c = counts[row * width + col];
      std::size_t level = 0;
      if (c > 0 && max_count > 0) {
        level = 1 + static_cast<std::size_t>(
                        std::log1p(static_cast<double>(c)) /
                        std::log1p(static_cast<double>(max_count)) *
                        static_cast<double>(kLevels - 1));
        level = std::min(level, kLevels);
      }
      out += kShades[level];
    }
    out += '\n';
  }
  return out;
}

}  // namespace geonet::report
