#include "report/table.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace geonet::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  for (const char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' &&
        c != '-' && c != '+' && c != ',' && c != '%' && c != 'e') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emit_row = [&](const std::vector<std::string>& row,
                            bool align_numbers) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = align_numbers && looks_numeric(row[c]);
      if (right) out.append(pad, ' ');
      out += row[c];
      if (!right) out.append(pad, ' ');
      if (c + 1 < row.size()) out += "  ";
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_, false);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, true);
  return out;
}

std::string Table::to_markdown() const {
  std::string out;
  const auto emit = [&](const std::vector<std::string>& row) {
    out += '|';
    for (const auto& cell : row) {
      out += ' ';
      out += cell;
      out += " |";
    }
    out += '\n';
  };
  emit(headers_);
  out += '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) emit(row);
  return out;
}

std::string fmt(double value, int precision) {
  if (!std::isfinite(value)) return "n/a";  // NaN/inf sentinels in tables
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_int(long long value) { return std::to_string(value); }

std::string fmt_count(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt(100.0 * fraction, precision) + "%";
}

}  // namespace geonet::report
