#include "report/series.h"

#include <cstdlib>
#include <filesystem>
#include <ostream>

#include "store/fs.h"

namespace geonet::report {

bool write_series(const std::string& path, const Series& series,
                  const std::string& comment) {
  return store::atomic_write(path, [&](std::ostream& out) {
    if (!comment.empty()) out << "# " << comment << '\n';
    out << "# " << series.name << ": x y\n";
    for (const auto& [x, y] : series.points) {
      out << x << ' ' << y << '\n';
    }
    return static_cast<bool>(out);
  });
}

bool write_columns(const std::string& path,
                   const std::vector<std::string>& headers,
                   const std::vector<std::vector<double>>& columns,
                   const std::string& comment) {
  return store::atomic_write(path, [&](std::ostream& out) {
    if (!comment.empty()) out << "# " << comment << '\n';
    out << '#';
    for (const auto& h : headers) out << ' ' << h;
    out << '\n';

    std::size_t rows = columns.empty() ? 0 : columns.front().size();
    for (const auto& col : columns) rows = std::min(rows, col.size());
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < columns.size(); ++c) {
        if (c > 0) out << ' ';
        out << columns[c][r];
      }
      out << '\n';
    }
    return static_cast<bool>(out);
  });
}

std::string results_dir() {
  std::string dir = "results";
  if (const char* env = std::getenv("GEONET_RESULTS_DIR")) {
    if (*env != '\0') dir = env;
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace geonet::report
