#pragma once

#include <string>
#include <vector>

namespace geonet::report {

/// Column-aligned plain-text table, used by every bench to print the
/// paper's tables next to the measured values.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header underline and two-space column gaps. Numeric-
  /// looking cells are right-aligned, text cells left-aligned.
  [[nodiscard]] std::string to_string() const;

  /// Renders as a GitHub-flavoured markdown table.
  [[nodiscard]] std::string to_markdown() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision number formatting helpers for table cells.
std::string fmt(double value, int precision = 2);
std::string fmt_int(long long value);
/// Formats with thousands separators, e.g. 563,521.
std::string fmt_count(unsigned long long value);
std::string fmt_percent(double fraction, int precision = 1);

}  // namespace geonet::report
