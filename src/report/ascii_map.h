#pragma once

#include <span>
#include <string>

#include "geo/geo_point.h"
#include "geo/region.h"

namespace geonet::report {

/// Renders a point set as an ASCII density map of the region — the
/// terminal stand-in for the paper's Figure 1 scatter maps. Darker
/// characters mean more points per character cell.
std::string ascii_density_map(std::span<const geo::GeoPoint> points,
                              const geo::Region& region,
                              std::size_t width = 72);

}  // namespace geonet::report
