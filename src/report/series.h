#pragma once

#include <string>
#include <utility>
#include <vector>

namespace geonet::report {

/// A named (x, y) series destined for a gnuplot-style .dat file.
struct Series {
  std::string name;
  std::vector<std::pair<double, double>> points;
};

/// Writes one series as two whitespace-separated columns with a comment
/// header. Returns false (and writes nothing) on I/O failure.
bool write_series(const std::string& path, const Series& series,
                  const std::string& comment = {});

/// Writes several aligned columns: the header names each column; rows are
/// truncated to the shortest column. Returns false on I/O failure.
bool write_columns(const std::string& path,
                   const std::vector<std::string>& headers,
                   const std::vector<std::vector<double>>& columns,
                   const std::string& comment = {});

/// Directory benches drop their .dat files into; created on demand.
/// Honours GEONET_RESULTS_DIR, defaulting to "results".
std::string results_dir();

}  // namespace geonet::report
