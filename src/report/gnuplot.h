#pragma once

#include <string>
#include <vector>

namespace geonet::report {

/// Description of one gnuplot panel over previously-written .dat files.
struct GnuplotPanel {
  std::string title;
  std::string xlabel;
  std::string ylabel;
  std::vector<std::string> dat_files;  ///< paths relative to the script
  bool points = true;                  ///< points vs lines
  bool logx = false;
  bool logy = false;
};

/// Writes a standalone gnuplot script rendering each panel to a PNG next
/// to the script. Returns false on I/O failure. Run with
/// `gnuplot <script>` from the results directory.
bool write_gnuplot_script(const std::string& path,
                          const std::vector<GnuplotPanel>& panels);

}  // namespace geonet::report
