#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "err/status.h"

namespace geonet::serve {

/// Wire protocol of `geonet serve` (see docs/serve.md).
///
/// The primary transport is length-prefixed JSON frames over TCP: every
/// request and every response is a 4-byte big-endian payload length
/// followed by exactly that many bytes of UTF-8 JSON. Framing carries no
/// other state, so a client can pipeline requests and match responses by
/// order — the server always answers a connection's requests in arrival
/// order.
///
/// A connection may instead open with an HTTP/1.1 GET line ("GET /density
/// ?lat=..&lon=.. HTTP/1.1"); the server then answers that one request
/// with a minimal HTTP response (Content-Length, Connection: close) and
/// closes. The shim exists so `curl` can poke a running server; the
/// framed protocol is the real interface. A connection speaks exactly one
/// of the two protocols, decided by its first bytes.
///
/// Robustness contract (drilled by tests/test_serve.cpp and
/// tools/check_serve.py): a malformed frame, an oversized declared
/// length, unparseable JSON, an unknown verb or out-of-domain arguments
/// never crash the server and never go unanswered — each yields a clean
/// {"ok":false,"error":{...}} response (closing the connection only when
/// the stream itself can no longer be framed).

/// Frame length prefix size and the default cap on one payload. A
/// declared length above the cap poisons the stream (there is no way to
/// resynchronise), so the decoder reports a hard error and the server
/// answers once and closes.
inline constexpr std::size_t kFramePrefixBytes = 4;
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Renders one frame: big-endian length + payload.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame reassembly for one connection. Feed raw bytes as
/// they arrive; next() pops complete payloads in order. Once bad() the
/// stream is unrecoverable (oversized declared length) and the remaining
/// buffer is meaningless.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void feed(std::string_view bytes) { buffer_.append(bytes); }

  /// The next complete payload, or nullopt when more bytes are needed
  /// (or the stream is bad).
  std::optional<std::string> next();

  [[nodiscard]] bool bad() const noexcept { return bad_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Bytes buffered but not yet consumed (diagnostics).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  bool bad_ = false;
  std::string error_;
};

/// Query verbs. Data verbs are answered from one immutable snapshot
/// epoch; control verbs (reload, shutdown) and stats are handled serially
/// on the server's listener thread.
enum class Verb : std::uint8_t {
  kPing,      ///< liveness + current epoch (readiness probe)
  kInfo,      ///< snapshot facts: nodes, links, regions, AS count
  kDensity,   ///< density patch at a coordinate, per configured region
  kFd,        ///< distance-preference f(d) bin lookup for one region
  kNearest,   ///< k nearest routers to a coordinate
  kWithin,    ///< routers within a radius of a coordinate
  kAs,        ///< AS membership + hull containment for a coordinate
  kStats,     ///< server counters (requests, errors, batches, reloads)
  kReload,    ///< hot-swap to the cache snapshot named by `fingerprint`
  kShutdown,  ///< graceful stop (equivalent to SIGTERM)
};

[[nodiscard]] const char* verb_name(Verb verb) noexcept;

/// One parsed request. Fields are only meaningful for the verbs that use
/// them; parse_request validates domains (finite coordinates in range,
/// k and radius positive and bounded) so answer paths never see garbage.
struct Request {
  Verb verb = Verb::kPing;
  double lat = 0.0;
  double lon = 0.0;
  double d = 0.0;             ///< kFd: distance in statute miles
  double radius_miles = 0.0;  ///< kWithin
  std::size_t k = 8;          ///< kNearest
  std::size_t max_hits = 256; ///< kWithin: cap on listed hits
  std::string region;         ///< kFd: region name (e.g. "US")
  std::string fingerprint;    ///< kReload: 32-hex cache key

  /// True for verbs the listener thread must handle serially (they
  /// mutate server state or read it outside any snapshot epoch).
  [[nodiscard]] bool is_control() const noexcept {
    return verb == Verb::kReload || verb == Verb::kShutdown ||
           verb == Verb::kStats;
  }
};

/// Upper bounds on request parameters (rejected beyond, never clamped —
/// a client asking for more than the server will answer should hear so).
inline constexpr std::size_t kMaxNearestK = 4096;
inline constexpr std::size_t kMaxWithinHits = 65536;

/// Parses one JSON request payload: {"op":"nearest","lat":..,...}.
/// kInvalidArgument with a one-line diagnostic on malformed JSON, an
/// unknown op, a missing field, or an out-of-domain value.
err::Result<Request> parse_request(std::string_view json);

/// True when a connection's opening bytes look like an HTTP GET request
/// (the shim); callers buffer until has_complete_http_request.
[[nodiscard]] bool looks_like_http(std::string_view opening);

/// True once the buffer holds the full request head ("\r\n\r\n").
[[nodiscard]] bool has_complete_http_request(std::string_view buffer);

/// Maps an HTTP request head to a Request: the target path selects the
/// verb ("/density", "/fd", ...) and the query string supplies fields
/// (lat=..&lon=..). Percent- and plus-decoding applied to values.
err::Result<Request> parse_http_request(std::string_view head);

/// Renders a minimal HTTP/1.1 response around a JSON body.
/// `status` is 200, 400, 404 or 503.
[[nodiscard]] std::string http_response(int status, std::string_view body_json);

/// {"ok":false,"error":{"code":"...","message":"..."}} — the uniform
/// error payload.
[[nodiscard]] std::string error_json(const err::Status& status);

}  // namespace geonet::serve
