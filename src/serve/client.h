#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "err/status.h"

namespace geonet::serve {

/// Minimal blocking client for the framed protocol — what the tests, the
/// load generator and check-style tools use to talk to a server. One
/// connection, synchronous round trips; not itself part of the served
/// protocol surface.
class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;

  /// Connects to host:port (IPv4 dotted quad).
  err::Status connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close() noexcept;

  /// One framed round trip: sends `request_json`, returns the response
  /// payload. kUnavailable on a transport failure (including the server
  /// closing the connection).
  err::Result<std::string> request(std::string_view request_json);

  /// Sends raw bytes as-is (malformed-frame drills). kUnavailable on
  /// transport failure.
  err::Status send_raw(std::string_view bytes);

  /// Reads one framed response without sending anything first.
  err::Result<std::string> read_response();

 private:
  int fd_ = -1;
};

}  // namespace geonet::serve
