#include "serve/snapshot.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "geo/convex_hull.h"
#include "net/graph_io.h"
#include "net/topology.h"
#include "obs/json.h"
#include "synth/scenario_store.h"

namespace geonet::serve {
namespace {

/// Projected hull polygon per AS record, mirroring analyze_hulls'
/// grouping exactly (same skip of the unmapped bucket, same restriction
/// semantics, same projection choice) so containment answers agree with
/// the offline hull areas.
std::vector<std::vector<geo::PlanarPoint>> build_hull_polygons(
    const net::AnnotatedGraph& graph, const core::HullOptions& options,
    const geo::SpatialIndex& index,
    const std::vector<core::AsHullRecord>& records,
    const geo::AlbersProjection& projection) {
  std::vector<std::uint8_t> restrict_mask;
  if (options.restrict_to) {
    restrict_mask = index.region_mask(*options.restrict_to);
  }
  std::unordered_map<std::uint32_t, std::vector<geo::PlanarPoint>> by_as;
  std::uint32_t node_id = 0;
  for (const auto& node : graph.nodes()) {
    const std::uint32_t id = node_id++;
    if (node.asn == net::kUnknownAs) continue;
    if (options.restrict_to && restrict_mask[id] == 0) continue;
    by_as[node.asn].push_back(projection.project(node.location));
  }
  std::vector<std::vector<geo::PlanarPoint>> polys(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto it = by_as.find(records[i].asn);
    if (it == by_as.end()) continue;
    std::vector<geo::PlanarPoint> hull = geo::convex_hull(it->second);
    if (hull.size() >= 3) polys[i] = std::move(hull);
  }
  return polys;
}

void write_neighbor_array(obs::JsonWriter& json,
                          const net::AnnotatedGraph& graph,
                          const std::vector<geo::SpatialIndex::Neighbor>& hits,
                          std::size_t limit) {
  json.begin_array();
  const std::size_t n = std::min(hits.size(), limit);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& hit = hits[i];
    const net::GraphNode& node = graph.node(hit.id);
    json.begin_object();
    json.key("id").value(static_cast<std::uint64_t>(hit.id));
    json.key("asn").value(static_cast<std::uint64_t>(node.asn));
    json.key("lat").value(node.location.lat_deg);
    json.key("lon").value(node.location.lon_deg);
    json.key("distance_miles").value(hit.distance_miles);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

err::Result<std::shared_ptr<const ServeSnapshot>> ServeSnapshot::build(
    net::AnnotatedGraph graph, const population::WorldPopulation& world,
    const ServeOptions& options, std::optional<geo::SpatialIndex> prebuilt,
    std::string epoch_hex) {
  if (graph.node_count() == 0) {
    return err::Status::invalid_argument("cannot serve an empty graph");
  }
  auto snapshot = std::shared_ptr<ServeSnapshot>(new ServeSnapshot());
  snapshot->epoch_ = epoch_hex.empty()
                         ? net::graph_digest(graph).hex()
                         : std::move(epoch_hex);
  snapshot->graph_ = std::move(graph);
  const net::AnnotatedGraph& g = snapshot->graph_;

  if (prebuilt.has_value() && prebuilt->size() == g.node_count()) {
    snapshot->index_ = *std::move(prebuilt);
  } else {
    snapshot->index_ = geo::SpatialIndex::build(g.locations());
  }
  const geo::SpatialIndex& index = snapshot->index_;

  std::vector<geo::Region> regions =
      options.regions.empty() ? geo::regions::paper_study_regions()
                              : options.regions;
  snapshot->regions_.reserve(regions.size());
  for (const geo::Region& region : regions) {
    RegionTable table{region, geo::Grid(region, options.patch_arcmin),
                      {}, {}, {}, {}};
    table.node_counts = index.tally(table.patches);
    table.populations.resize(table.patches.cell_count());
    for (std::size_t flat = 0; flat < table.populations.size(); ++flat) {
      table.populations[flat] =
          world.population_in(table.patches.cell_bounds(
              table.patches.unflatten(flat)));
    }
    table.density = core::analyze_density(g, world, region,
                                          options.patch_arcmin, &index);
    table.fd = core::distance_preference(g, region, options.distance, &index);
    snapshot->regions_.push_back(std::move(table));
  }

  snapshot->hulls_ = core::analyze_hulls(g, options.hulls, &index);
  snapshot->projection_ =
      options.hulls.restrict_to
          ? geo::AlbersProjection::for_region(*options.hulls.restrict_to)
          : geo::AlbersProjection::world();
  snapshot->hull_polys_ = build_hull_polygons(
      g, options.hulls, index, snapshot->hulls_.records, snapshot->projection_);
  return std::shared_ptr<const ServeSnapshot>(std::move(snapshot));
}

err::Result<std::shared_ptr<const ServeSnapshot>> ServeSnapshot::from_cache(
    store::ArtifactCache& cache, const store::Digest128& key,
    const population::WorldPopulation& world, const ServeOptions& options) {
  err::Result<std::vector<std::byte>> bytes = cache.get(key);
  if (!bytes.is_ok()) return bytes.status();

  // A cache entry is either a single-graph snapshot or a full scenario
  // artifact bundle; sniff by decoding (both validate everything, so a
  // wrong guess is a clean error, not a misparse).
  err::Result<net::GraphSnapshot> as_graph =
      net::decode_graph_snapshot(bytes.value());
  if (as_graph.is_ok()) {
    net::GraphSnapshot snapshot = std::move(as_graph).value();
    return build(std::move(snapshot.graph), world, options,
                 std::move(snapshot.spatial_index), key.hex());
  }
  err::Result<synth::ScenarioArtifacts> as_scenario =
      synth::decode_scenario_artifacts(bytes.value());
  if (as_scenario.is_ok()) {
    const std::size_t slot = synth::dataset_slot(synth::DatasetKind::kSkitter,
                                                 synth::MapperKind::kIxMapper);
    return build(std::move(as_scenario.value().graphs[slot]), world, options,
                 std::nullopt, key.hex());
  }
  return err::Status::data_loss(
      "cache entry " + key.hex() +
      " is neither a graph snapshot (" + as_graph.status().message() +
      ") nor scenario artifacts (" + as_scenario.status().message() + ")");
}

err::Result<std::shared_ptr<const ServeSnapshot>> ServeSnapshot::from_file(
    const std::string& path, const population::WorldPopulation& world,
    const ServeOptions& options) {
  net::GraphReadResult read = net::read_graph_file_ex(path);
  if (!read.ok()) return read.status;
  return build(std::move(*read.graph), world, options,
               std::move(read.spatial_index));
}

std::string ServeSnapshot::answer(const Request& request) const {
  if (request.is_control()) {
    return error_json(err::Status::internal(
        std::string("control verb \"") + verb_name(request.verb) +
        "\" routed to a snapshot"));
  }
  obs::JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("op").value(verb_name(request.verb));
  json.key("epoch").value(epoch_);

  const geo::GeoPoint query{request.lat, request.lon};
  switch (request.verb) {
    case Verb::kPing:
      break;

    case Verb::kInfo: {
      json.key("kind").value(net::to_string(graph_.kind()));
      json.key("name").value(graph_.name());
      json.key("nodes").value(static_cast<std::uint64_t>(graph_.node_count()));
      json.key("links").value(static_cast<std::uint64_t>(graph_.edge_count()));
      json.key("as_count")
          .value(static_cast<std::uint64_t>(hulls_.records.size()));
      json.key("regions").begin_array();
      for (const RegionTable& table : regions_) {
        json.begin_object();
        json.key("name").value(table.region.name);
        json.key("nodes").value(static_cast<std::uint64_t>(table.fd.nodes));
        json.key("links").value(static_cast<std::uint64_t>(table.fd.links));
        json.key("bin_miles").value(table.fd.bin_miles);
        json.key("patches")
            .value(static_cast<std::uint64_t>(table.patches.cell_count()));
        json.end_object();
      }
      json.end_array();
      break;
    }

    case Verb::kDensity: {
      json.key("lat").value(request.lat);
      json.key("lon").value(request.lon);
      json.key("regions").begin_array();
      for (const RegionTable& table : regions_) {
        const std::optional<geo::CellIndex> cell =
            table.patches.cell_of(query);
        if (!cell.has_value()) continue;
        const std::size_t flat = table.patches.flat_index(*cell);
        json.begin_object();
        json.key("region").value(table.region.name);
        json.key("row").value(static_cast<std::uint64_t>(cell->row));
        json.key("col").value(static_cast<std::uint64_t>(cell->col));
        json.key("nodes").value(table.node_counts[flat]);
        json.key("population").value(table.populations[flat]);
        json.key("nodes_in_region")
            .value(static_cast<std::uint64_t>(table.density.nodes_in_region));
        json.key("occupied_patches")
            .value(static_cast<std::uint64_t>(table.density.occupied_patches));
        json.key("fit").begin_object();
        json.key("slope").value(table.density.loglog_fit.slope);
        json.key("intercept").value(table.density.loglog_fit.intercept);
        json.key("r_squared").value(table.density.loglog_fit.r_squared);
        json.end_object();
        json.end_object();
      }
      json.end_array();
      break;
    }

    case Verb::kFd: {
      const auto it = std::find_if(
          regions_.begin(), regions_.end(), [&](const RegionTable& t) {
            return t.region.name == request.region;
          });
      if (it == regions_.end()) {
        return error_json(err::Status::not_found(
            "region \"" + request.region + "\" is not served"));
      }
      const core::DistancePreference& fd = it->fd;
      json.key("region").value(it->region.name);
      json.key("d").value(request.d);
      json.key("bin_miles").value(fd.bin_miles);
      json.key("nodes").value(static_cast<std::uint64_t>(fd.nodes));
      json.key("links").value(static_cast<std::uint64_t>(fd.links));
      const std::size_t bin = fd.link_hist.bin_of(request.d);
      if (bin >= fd.link_hist.bin_count()) {
        json.key("beyond_range").value(true);
        json.key("f").value(0.0);
      } else {
        json.key("bin").value(static_cast<std::uint64_t>(bin));
        json.key("bin_center_miles").value(fd.bin_center(bin));
        json.key("f").value(fd.f[bin]);
        json.key("link_count").value(fd.link_hist.count(bin));
        json.key("pair_count").value(fd.pair_hist.count(bin));
      }
      break;
    }

    case Verb::kNearest: {
      json.key("lat").value(request.lat);
      json.key("lon").value(request.lon);
      const std::vector<geo::SpatialIndex::Neighbor> hits =
          index_.nearest(query, request.k);
      json.key("hits");
      write_neighbor_array(json, graph_, hits, hits.size());
      break;
    }

    case Verb::kWithin: {
      json.key("lat").value(request.lat);
      json.key("lon").value(request.lon);
      json.key("radius_miles").value(request.radius_miles);
      const std::vector<geo::SpatialIndex::Neighbor> hits =
          index_.within_radius(query, request.radius_miles);
      json.key("count").value(static_cast<std::uint64_t>(hits.size()));
      json.key("truncated").value(hits.size() > request.max_hits);
      json.key("hits");
      write_neighbor_array(json, graph_, hits, request.max_hits);
      break;
    }

    case Verb::kAs: {
      json.key("lat").value(request.lat);
      json.key("lon").value(request.lon);
      const std::vector<geo::SpatialIndex::Neighbor> nearest =
          index_.nearest(query, 1);
      if (!nearest.empty()) {
        const net::GraphNode& node = graph_.node(nearest.front().id);
        json.key("nearest").begin_object();
        json.key("id").value(static_cast<std::uint64_t>(nearest.front().id));
        json.key("asn").value(static_cast<std::uint64_t>(node.asn));
        json.key("distance_miles").value(nearest.front().distance_miles);
        json.end_object();
      } else {
        json.key("nearest").null();
      }
      const geo::PlanarPoint projected = projection_.project(query);
      json.key("containing").begin_array();
      for (std::size_t i = 0; i < hulls_.records.size(); ++i) {
        if (hull_polys_[i].empty()) continue;
        if (!geo::point_in_convex_polygon(projected, hull_polys_[i])) continue;
        const core::AsHullRecord& record = hulls_.records[i];
        json.begin_object();
        json.key("asn").value(static_cast<std::uint64_t>(record.asn));
        json.key("hull_area_sq_miles").value(record.hull_area_sq_miles);
        json.key("node_count")
            .value(static_cast<std::uint64_t>(record.node_count));
        json.key("location_count")
            .value(static_cast<std::uint64_t>(record.location_count));
        json.key("degree").value(static_cast<std::uint64_t>(record.degree));
        json.end_object();
      }
      json.end_array();
      break;
    }

    case Verb::kStats:
    case Verb::kReload:
    case Verb::kShutdown:
      break;  // unreachable: is_control() handled above
  }
  json.end_object();
  return json.str();
}

}  // namespace geonet::serve
