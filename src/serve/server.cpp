#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "exec/parallel.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace geonet::serve {
namespace {

/// Self-pipe write end for the (single) server's signal handlers. Only
/// ever written from a handler with a signal-safe write(2).
std::atomic<int> g_signal_wake_fd{-1};

extern "C" void serve_signal_handler(int) {
  const int fd = g_signal_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(fd, &byte, 1);
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(ServerOptions options,
               std::shared_ptr<const ServeSnapshot> snapshot,
               store::ArtifactCache* cache,
               const population::WorldPopulation* world,
               ServeOptions serve_options)
    : options_(std::move(options)),
      serve_options_(std::move(serve_options)),
      cache_(cache),
      world_(world),
      snapshot_(std::move(snapshot)) {}

Server::~Server() {
  if (signals_installed_) {
    g_signal_wake_fd.store(-1, std::memory_order_relaxed);
    ::signal(SIGINT, SIG_DFL);
    ::signal(SIGTERM, SIG_DFL);
  }
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

err::Status Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return err::Status::unavailable(std::string("socket: ") +
                                    std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return err::Status::invalid_argument("bad listen host \"" + options_.host +
                                         "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return err::Status::unavailable(std::string("bind: ") +
                                    std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) {
    return err::Status::unavailable(std::string("listen: ") +
                                    std::strerror(errno));
  }
  if (!set_nonblocking(listen_fd_)) {
    return err::Status::unavailable("failed to set listener nonblocking");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return err::Status::unavailable(std::string("getsockname: ") +
                                    std::strerror(errno));
  }
  port_ = ntohs(bound.sin_port);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return err::Status::unavailable(std::string("pipe: ") +
                                    std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);
  return err::Status::ok();
}

void Server::request_stop() noexcept {
  stop_.store(true, std::memory_order_relaxed);
  if (wake_write_fd_ >= 0) {
    const char byte = 's';
    [[maybe_unused]] const auto n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Server::install_signal_handlers() noexcept {
  g_signal_wake_fd.store(wake_write_fd_, std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = serve_signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  signals_installed_ = true;
}

ServerStats Server::stats() const noexcept {
  ServerStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.errors = errors_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.reloads = reloads_.load(std::memory_order_relaxed);
  out.connections = connections_total_.load(std::memory_order_relaxed);
  return out;
}

std::string Server::epoch() const {
  return current_snapshot()->epoch();
}

std::shared_ptr<const ServeSnapshot> Server::current_snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

void Server::accept_ready() {
  while (connections_.size() < options_.max_connections) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient error: retry next cycle
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.decoder = FrameDecoder(options_.max_frame_bytes);
    connections_.emplace(fd, std::move(conn));
    connections_total_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::read_connection(Connection& conn,
                             std::vector<PendingRequest>& pending) {
  char buffer[16384];
  bool peer_closed = false;
  while (true) {
    const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      std::string_view bytes(buffer, static_cast<std::size_t>(n));
      if (!conn.mode_known) {
        conn.mode_known = true;
        conn.http = looks_like_http(bytes);
      }
      if (conn.http) {
        conn.http_buffer.append(bytes);
        if (conn.http_buffer.size() > options_.max_frame_bytes) {
          enqueue_response(conn,
                           error_json(err::Status::invalid_argument(
                               "request head too large")),
                           /*http=*/true, /*parse_failed=*/true);
          conn.closing = true;
          return;
        }
      } else {
        conn.decoder.feed(bytes);
      }
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    peer_closed = true;  // hard error: treat as closed
    break;
  }

  if (conn.http) {
    if (has_complete_http_request(conn.http_buffer)) {
      pending.emplace_back(conn.fd, parse_http_request(conn.http_buffer),
                           /*http=*/true);
      conn.http_buffer.clear();
      conn.closing = true;  // one response per HTTP connection
    }
  } else {
    while (auto payload = conn.decoder.next()) {
      pending.emplace_back(conn.fd, parse_request(*payload), /*http=*/false);
      if (pending.size() >= options_.max_batch) break;
    }
    if (conn.decoder.bad()) {
      // Unframeable stream: answer once, then close — there is no way to
      // find the next frame boundary.
      enqueue_response(
          conn, error_json(err::Status::invalid_argument(conn.decoder.error())),
          /*http=*/false, /*parse_failed=*/true);
      conn.closing = true;
    }
  }
  if (peer_closed) conn.closing = true;
}

void Server::enqueue_response(Connection& conn, const std::string& body,
                              bool http, bool parse_failed) {
  if (parse_failed) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::global().counter("serve.errors").add();
  }
  if (http) {
    int status = 200;
    if (parse_failed || body.rfind("{\"ok\":false", 0) == 0) {
      // Derive the HTTP status from the error payload's code field.
      status = body.find("\"NOT_FOUND\"") != std::string::npos      ? 404
               : body.find("\"UNAVAILABLE\"") != std::string::npos ? 503
                                                                   : 400;
    }
    conn.out.append(http_response(status, body));
    conn.closing = true;
  } else {
    conn.out.append(encode_frame(body));
  }
}

std::string Server::handle_control(const Request& request) {
  const std::shared_ptr<const ServeSnapshot> snapshot = current_snapshot();
  obs::JsonWriter json;
  switch (request.verb) {
    case Verb::kStats: {
      const ServerStats s = stats();
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("stats");
      json.key("epoch").value(snapshot->epoch());
      json.key("requests").value(s.requests);
      json.key("errors").value(s.errors);
      json.key("batches").value(s.batches);
      json.key("reloads").value(s.reloads);
      json.key("connections").value(s.connections);
      json.end_object();
      return json.str();
    }
    case Verb::kReload: {
      if (cache_ == nullptr || world_ == nullptr) {
        return error_json(err::Status::unavailable(
            "server was started without an artifact cache"));
      }
      const std::optional<store::Digest128> key =
          store::Digest128::parse_hex(request.fingerprint);
      if (!key.has_value()) {
        return error_json(err::Status::invalid_argument(
            "fingerprint is not 32 hex digits"));
      }
      err::Result<std::shared_ptr<const ServeSnapshot>> next =
          ServeSnapshot::from_cache(*cache_, *key, *world_, serve_options_);
      if (!next.is_ok()) return error_json(next.status());
      {
        std::lock_guard<std::mutex> lock(snapshot_mutex_);
        snapshot_ = next.value();
      }
      reloads_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::global().counter("serve.reloads").add();
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("reload");
      json.key("epoch").value(next.value()->epoch());
      json.end_object();
      return json.str();
    }
    case Verb::kShutdown: {
      if (!options_.allow_shutdown) {
        return error_json(err::Status::invalid_argument(
            "shutdown verb is disabled on this server"));
      }
      request_stop();
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("shutdown");
      json.key("epoch").value(snapshot->epoch());
      json.end_object();
      return json.str();
    }
    default:
      return error_json(err::Status::internal("non-control verb in "
                                              "handle_control"));
  }
}

void Server::process_batch(std::vector<PendingRequest>& pending) {
  if (pending.empty()) return;
  const auto started = std::chrono::steady_clock::now();
  const obs::Span span("serve/batch");
  auto& metrics = obs::MetricsRegistry::global();
  batches_.fetch_add(1, std::memory_order_relaxed);
  metrics.counter("serve.batches").add();
  metrics.histogram("serve.batch_size").record(pending.size());

  // One epoch for the whole batch: a concurrent reload cannot tear a
  // batch's answers across snapshots.
  const std::shared_ptr<const ServeSnapshot> snapshot = current_snapshot();

  std::vector<std::string> responses(pending.size());
  std::vector<std::size_t> data_indices;
  data_indices.reserve(pending.size());
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (pending[i].parsed.is_ok() && !pending[i].parsed.value().is_control()) {
      data_indices.push_back(i);
    }
  }

  exec::RegionOptions region;
  region.name = "serve/batch";
  region.grain = 1;
  exec::parallel_for(
      data_indices.size(), region,
      [&](std::size_t begin, std::size_t end, std::size_t) {
        for (std::size_t j = begin; j < end; ++j) {
          const std::size_t i = data_indices[j];
          responses[i] = snapshot->answer(pending[i].parsed.value());
        }
      });

  // Control verbs and parse failures, serially, preserving arrival order
  // in the response stream.
  for (std::size_t i = 0; i < pending.size(); ++i) {
    if (!pending[i].parsed.is_ok()) {
      responses[i] = error_json(pending[i].parsed.status());
    } else if (pending[i].parsed.value().is_control()) {
      responses[i] = handle_control(pending[i].parsed.value());
    }
  }

  for (std::size_t i = 0; i < pending.size(); ++i) {
    const auto it = connections_.find(pending[i].fd);
    if (it == connections_.end()) continue;  // connection died mid-batch
    requests_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("serve.requests").add();
    enqueue_response(it->second, responses[i], pending[i].http,
                     !pending[i].parsed.is_ok());
  }

  const auto elapsed_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count();
  auto& latency = metrics.histogram("serve.latency_us");
  for (std::size_t i = 0; i < pending.size(); ++i) {
    latency.record(static_cast<std::uint64_t>(elapsed_us));
  }
}

void Server::write_connection(Connection& conn) {
  while (!conn.out.empty()) {
    const ssize_t n = ::send(conn.fd, conn.out.data(), conn.out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    conn.out.clear();  // peer gone; drop the rest and close
    conn.closing = true;
    return;
  }
}

err::Status Server::run() {
  if (listen_fd_ < 0) {
    return err::Status::internal("run() before start()");
  }
  bool draining = false;
  while (true) {
    std::vector<pollfd> fds;
    fds.reserve(connections_.size() + 2);
    fds.push_back({wake_read_fd_, POLLIN, 0});
    if (!draining && connections_.size() < options_.max_connections) {
      fds.push_back({listen_fd_, POLLIN, 0});
    }
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!draining && !conn.closing) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      if (events != 0) fds.push_back({fd, events, 0});
    }

    if (draining) {
      bool writes_pending = false;
      for (const auto& [fd, conn] : connections_) {
        if (!conn.out.empty()) {
          writes_pending = true;
          break;
        }
      }
      if (!writes_pending) break;
    }

    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0 && errno != EINTR) {
      return err::Status::unavailable(std::string("poll: ") +
                                      std::strerror(errno));
    }

    // Drain the wake pipe. Both writers (request_stop and the signal
    // handler, which cannot touch stop_ directly) mean "stop", so any
    // byte on the pipe raises the flag.
    char drain_buffer[64];
    while (::read(wake_read_fd_, drain_buffer, sizeof(drain_buffer)) > 0) {
      stop_.store(true, std::memory_order_relaxed);
    }

    std::vector<PendingRequest> pending;
    for (const pollfd& p : fds) {
      if (p.fd == wake_read_fd_) continue;
      if (p.fd == listen_fd_) {
        if ((p.revents & POLLIN) != 0 && !draining) accept_ready();
        continue;
      }
      auto it = connections_.find(p.fd);
      if (it == connections_.end()) continue;
      if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0 && !draining &&
          !it->second.closing) {
        read_connection(it->second, pending);
      }
    }

    // Drain transition (the only place it happens, so it always runs
    // after a read phase): stop accepting and reading, but first sweep
    // every connection once more — requests whose bytes were already in
    // the kernel buffers when the stop arrived still get answered.
    if (!draining && stop_.load(std::memory_order_relaxed)) {
      draining = true;
      for (auto& [fd, conn] : connections_) {
        if (!conn.closing) read_connection(conn, pending);
      }
    }

    process_batch(pending);

    std::vector<int> dead;
    for (auto& [fd, conn] : connections_) {
      if (!conn.out.empty()) write_connection(conn);
      if (conn.closing && conn.out.empty()) dead.push_back(fd);
    }
    for (const int fd : dead) close_connection(fd);
  }

  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  return err::Status::ok();
}

void Server::close_connection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  ::close(fd);
  connections_.erase(it);
}

}  // namespace geonet::serve
