#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/density.h"
#include "core/distance_pref.h"
#include "core/hull_analysis.h"
#include "err/status.h"
#include "geo/grid.h"
#include "geo/projection.h"
#include "geo/region.h"
#include "geo/spatial_index.h"
#include "net/annotated_graph.h"
#include "population/synth_population.h"
#include "serve/protocol.h"
#include "store/cache.h"
#include "store/fingerprint.h"

namespace geonet::serve {

/// Query-shaping knobs, fixed for the lifetime of a server (a reload
/// swaps the snapshot, never the options, so answers across epochs stay
/// comparable).
struct ServeOptions {
  /// Regions with density + f(d) tables; empty = the paper's US / Europe
  /// / Japan.
  std::vector<geo::Region> regions;
  double patch_arcmin = 75.0;
  core::DistancePrefOptions distance;
  core::HullOptions hulls;
};

/// One immutable, fully precomputed epoch of the server: the graph, its
/// spatial index, and the offline study tables every query verb answers
/// from.
///
/// All query state is computed at build time by the *same* core analysis
/// entry points the offline CLI uses (`analyze_density`,
/// `distance_preference`, `analyze_hulls`), so a serve answer is a lookup
/// into the identical tables `geonet analyze` would print — the
/// differential tests pin byte-level equality. After build() the object
/// is never mutated; worker threads share it behind
/// shared_ptr<const ServeSnapshot> and a reload simply publishes a new
/// epoch.
class ServeSnapshot {
 public:
  /// Per-region query tables.
  struct RegionTable {
    geo::Region region;
    geo::Grid patches;
    /// Node count per flat grid cell (index tally; offline-identical).
    std::vector<double> node_counts;
    /// People per flat grid cell, precomputed so density queries never
    /// touch the population raster at request time.
    std::vector<double> populations;
    core::DensityAnalysis density;
    core::DistancePreference fd;
  };

  /// Builds every table from a graph. `prebuilt` (e.g. a snapshot's SIDX
  /// section) is reused when it matches the graph; otherwise the index is
  /// built here. `epoch_hex` labels answers (pass the cache key when
  /// loading from the cache; from_file/build default to the graph
  /// digest).
  static err::Result<std::shared_ptr<const ServeSnapshot>> build(
      net::AnnotatedGraph graph, const population::WorldPopulation& world,
      const ServeOptions& options,
      std::optional<geo::SpatialIndex> prebuilt = std::nullopt,
      std::string epoch_hex = {});

  /// Loads an artifact-cache entry by key and builds. The entry may be a
  /// graph snapshot or a scenario-artifacts snapshot (the Skitter +
  /// IxMapper slot is served); sniffed by decoding.
  static err::Result<std::shared_ptr<const ServeSnapshot>> from_cache(
      store::ArtifactCache& cache, const store::Digest128& key,
      const population::WorldPopulation& world, const ServeOptions& options);

  /// Reads a .geos or text graph file and builds, reusing an embedded
  /// SIDX section when present.
  static err::Result<std::shared_ptr<const ServeSnapshot>> from_file(
      const std::string& path, const population::WorldPopulation& world,
      const ServeOptions& options);

  /// The epoch label stamped into every answer ("epoch":"<hex32>").
  [[nodiscard]] const std::string& epoch() const noexcept { return epoch_; }
  [[nodiscard]] const net::AnnotatedGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] const geo::SpatialIndex& index() const noexcept {
    return index_;
  }
  [[nodiscard]] const std::vector<RegionTable>& regions() const noexcept {
    return regions_;
  }
  [[nodiscard]] const core::HullAnalysis& hulls() const noexcept {
    return hulls_;
  }

  /// Answers one *data* verb (ping/info/density/fd/nearest/within/as)
  /// as a JSON object string. Control verbs are the server's business —
  /// passing one here is a programming error answered with kInternal.
  [[nodiscard]] std::string answer(const Request& request) const;

 private:
  ServeSnapshot() = default;

  std::string epoch_;
  net::AnnotatedGraph graph_{net::NodeKind::kRouter};
  geo::SpatialIndex index_;
  std::vector<RegionTable> regions_;
  core::HullAnalysis hulls_;
  /// records[i]'s hull polygon (projected, CCW) — empty when degenerate
  /// (< 3 vertices, zero area). Parallel to hulls_.records.
  std::vector<std::vector<geo::PlanarPoint>> hull_polys_;
  geo::AlbersProjection projection_ = geo::AlbersProjection::world();
};

}  // namespace geonet::serve
