#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "err/status.h"
#include "population/synth_population.h"
#include "serve/protocol.h"
#include "serve/snapshot.h"
#include "store/cache.h"

namespace geonet::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks; read the bound port back via
  /// port() (and the CLI prints it + optionally writes --port-file).
  std::uint16_t port = 0;
  std::size_t max_connections = 128;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Cap on requests drained into one exec-pool batch per poll cycle.
  std::size_t max_batch = 256;
  /// Whether the `shutdown` verb is honoured (the CLI enables it; a
  /// long-lived deployment might not want remote stop).
  bool allow_shutdown = true;
};

/// Serve-side counters, exposed by the `stats` verb and mirrored into
/// obs metrics (serve.* rows, docs/observability.md).
struct ServerStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t batches = 0;
  std::uint64_t reloads = 0;
  std::uint64_t connections = 0;
};

/// The `geonet serve` engine: one nonblocking listener thread owning all
/// sockets, fanning data-verb batches out on the global exec pool.
///
/// Threading model (docs/serve.md): the poll loop accepts connections,
/// reassembles frames and parses requests; each cycle the complete
/// requests form one batch answered via exec::parallel_for against a
/// single snapshot epoch captured for the whole batch (so a reload
/// mid-batch can never produce a torn mix within one batch — and
/// per-request answers always carry their epoch). Control verbs run
/// serially on the listener thread after the batch. Responses are
/// written back in per-connection arrival order.
///
/// Shutdown: request_stop() (self-pipe, signal-safe via
/// install_signal_handlers) stops accepting and reading, drains every
/// already-buffered complete request as a final batch, flushes all
/// pending writes, then closes — in-flight work is never dropped.
class Server {
 public:
  /// `cache` may be null (reload then answers kUnavailable). `world` and
  /// `serve_options` are what reload rebuilds snapshots with; both must
  /// outlive the server.
  Server(ServerOptions options,
         std::shared_ptr<const ServeSnapshot> snapshot,
         store::ArtifactCache* cache, const population::WorldPopulation* world,
         ServeOptions serve_options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; after success port() is the actual bound port.
  err::Status start();

  /// Runs the poll loop until request_stop() / SIGINT / SIGTERM / a
  /// `shutdown` verb. Returns the reason the loop ended (ok on a clean
  /// stop).
  err::Status run();

  /// Signal-safe stop request: wakes the poll loop via the self-pipe.
  void request_stop() noexcept;

  /// Routes SIGINT/SIGTERM to request_stop() of this server (one server
  /// per process; the CLI path). Restores default handlers on
  /// destruction.
  void install_signal_handlers() noexcept;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ServerStats stats() const noexcept;

  /// Current epoch label (for tests; racy only in the benign
  /// read-after-swap sense).
  [[nodiscard]] std::string epoch() const;

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::string http_buffer;
    std::string out;           ///< bytes pending write
    bool http = false;         ///< HTTP shim connection
    bool mode_known = false;   ///< first bytes seen yet?
    bool closing = false;      ///< close once `out` drains
  };

  struct PendingRequest {
    int fd = -1;
    err::Result<Request> parsed;
    bool http = false;
    PendingRequest(int fd_, err::Result<Request> parsed_, bool http_)
        : fd(fd_), parsed(std::move(parsed_)), http(http_) {}
  };

  void accept_ready();
  void read_connection(Connection& conn,
                       std::vector<PendingRequest>& pending);
  void write_connection(Connection& conn);
  void close_connection(int fd);
  void process_batch(std::vector<PendingRequest>& pending);
  std::string handle_control(const Request& request);
  void enqueue_response(Connection& conn, const std::string& body, bool http,
                        bool parse_failed);
  [[nodiscard]] std::shared_ptr<const ServeSnapshot> current_snapshot() const;

  ServerOptions options_;
  ServeOptions serve_options_;
  store::ArtifactCache* cache_;
  const population::WorldPopulation* world_;

  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ServeSnapshot> snapshot_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool signals_installed_ = false;

  std::unordered_map<int, Connection> connections_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> reloads_{0};
  std::atomic<std::uint64_t> connections_total_{0};
};

}  // namespace geonet::serve
