#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "serve/protocol.h"

namespace geonet::serve {

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

err::Status Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return err::Status::unavailable(std::string("socket: ") +
                                    std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return err::Status::invalid_argument("bad host \"" + host + "\"");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string detail = std::strerror(errno);
    close();
    return err::Status::unavailable("connect: " + detail);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return err::Status::ok();
}

err::Status Client::send_raw(std::string_view bytes) {
  if (fd_ < 0) return err::Status::unavailable("not connected");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return err::Status::unavailable(std::string("send: ") +
                                      std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
  return err::Status::ok();
}

err::Result<std::string> Client::read_response() {
  if (fd_ < 0) return err::Status::unavailable("not connected");
  // Blocking exact reads: prefix, then payload. Nothing is ever
  // over-read, so pipelined responses stay aligned with no carry-over.
  auto read_exact = [&](char* out, std::size_t want) -> err::Status {
    std::size_t have = 0;
    while (have < want) {
      const ssize_t n = ::recv(fd_, out + have, want - have, 0);
      if (n == 0) {
        return err::Status::unavailable("server closed the connection");
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return err::Status::unavailable(std::string("recv: ") +
                                        std::strerror(errno));
      }
      have += static_cast<std::size_t>(n);
    }
    return err::Status::ok();
  };

  char prefix[kFramePrefixBytes];
  err::Status status = read_exact(prefix, sizeof(prefix));
  if (!status.is_ok()) return status;
  const auto* u = reinterpret_cast<const unsigned char*>(prefix);
  const std::uint32_t length = (std::uint32_t{u[0]} << 24) |
                               (std::uint32_t{u[1]} << 16) |
                               (std::uint32_t{u[2]} << 8) | std::uint32_t{u[3]};
  if (length > kMaxFrameBytes) {
    return err::Status::data_loss("response frame length " +
                                  std::to_string(length) + " exceeds cap");
  }
  std::string payload(length, '\0');
  status = read_exact(payload.data(), payload.size());
  if (!status.is_ok()) return status;
  return payload;
}

err::Result<std::string> Client::request(std::string_view request_json) {
  const err::Status sent = send_raw(encode_frame(request_json));
  if (!sent.is_ok()) return sent;
  return read_response();
}

}  // namespace geonet::serve
