#include "serve/protocol.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "obs/json.h"

namespace geonet::serve {
namespace {

using obs::JsonValue;

std::uint32_t read_be32(const char* bytes) {
  const auto* u = reinterpret_cast<const unsigned char*>(bytes);
  return (std::uint32_t{u[0]} << 24) | (std::uint32_t{u[1]} << 16) |
         (std::uint32_t{u[2]} << 8) | std::uint32_t{u[3]};
}

void append_be32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>(v & 0xFF));
}

struct VerbEntry {
  const char* name;
  Verb verb;
};

constexpr VerbEntry kVerbs[] = {
    {"ping", Verb::kPing},       {"info", Verb::kInfo},
    {"density", Verb::kDensity}, {"fd", Verb::kFd},
    {"nearest", Verb::kNearest}, {"within", Verb::kWithin},
    {"as", Verb::kAs},           {"stats", Verb::kStats},
    {"reload", Verb::kReload},   {"shutdown", Verb::kShutdown},
};

std::optional<Verb> verb_from_name(std::string_view name) {
  for (const auto& entry : kVerbs) {
    if (name == entry.name) return entry.verb;
  }
  return std::nullopt;
}

bool needs_point(Verb verb) {
  return verb == Verb::kDensity || verb == Verb::kNearest ||
         verb == Verb::kWithin || verb == Verb::kAs;
}

/// Domain checks shared by the JSON and HTTP parsers. `seen_*` flags say
/// which fields the request actually supplied, so missing required
/// fields are distinguished from explicit zeros.
struct FieldPresence {
  bool lat = false;
  bool lon = false;
  bool d = false;
  bool radius = false;
  bool region = false;
  bool fingerprint = false;
};

err::Result<Request> validate(Request request, const FieldPresence& seen) {
  const Verb verb = request.verb;
  if (needs_point(verb)) {
    if (!seen.lat || !seen.lon) {
      return err::Status::invalid_argument(
          std::string(verb_name(verb)) + " requires lat and lon");
    }
    if (!std::isfinite(request.lat) || request.lat < -90.0 ||
        request.lat > 90.0) {
      return err::Status::invalid_argument("lat out of range [-90, 90]");
    }
    if (!std::isfinite(request.lon) || request.lon < -180.0 ||
        request.lon > 180.0) {
      return err::Status::invalid_argument("lon out of range [-180, 180]");
    }
  }
  if (verb == Verb::kFd) {
    if (!seen.d) {
      return err::Status::invalid_argument("fd requires d (miles)");
    }
    if (!std::isfinite(request.d) || request.d < 0.0) {
      return err::Status::invalid_argument("d must be finite and >= 0");
    }
    if (!seen.region || request.region.empty()) {
      return err::Status::invalid_argument("fd requires a region name");
    }
  }
  if (verb == Verb::kNearest) {
    if (request.k == 0 || request.k > kMaxNearestK) {
      return err::Status::invalid_argument(
          "k must be in [1, " + std::to_string(kMaxNearestK) + "]");
    }
  }
  if (verb == Verb::kWithin) {
    if (!seen.radius) {
      return err::Status::invalid_argument("within requires radius_miles");
    }
    if (!std::isfinite(request.radius_miles) || request.radius_miles < 0.0) {
      return err::Status::invalid_argument(
          "radius_miles must be finite and >= 0");
    }
    if (request.max_hits == 0 || request.max_hits > kMaxWithinHits) {
      return err::Status::invalid_argument(
          "max_hits must be in [1, " + std::to_string(kMaxWithinHits) + "]");
    }
  }
  if (verb == Verb::kReload) {
    const bool all_hex =
        std::all_of(request.fingerprint.begin(), request.fingerprint.end(),
                    [](unsigned char c) { return std::isxdigit(c) != 0; });
    if (!seen.fingerprint || request.fingerprint.size() != 32 || !all_hex) {
      return err::Status::invalid_argument(
          "reload requires a 32-hex-digit fingerprint");
    }
  }
  return request;
}

/// Reads one numeric field; false (with a diagnostic) when present but
/// not a number.
bool take_number(const JsonValue& doc, const char* key, double* out,
                 bool* seen, std::string* error) {
  const JsonValue* field = doc.find(key);
  if (field == nullptr) return true;
  if (!field->is_number()) {
    *error = std::string(key) + " must be a number";
    return false;
  }
  *out = field->as_double();
  *seen = true;
  return true;
}

bool take_size(const JsonValue& doc, const char* key, std::size_t* out,
               std::string* error) {
  const JsonValue* field = doc.find(key);
  if (field == nullptr) return true;
  if (!field->is_number() || field->as_double() < 0.0 ||
      field->as_double() != std::floor(field->as_double())) {
    *error = std::string(key) + " must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::size_t>(field->as_double());
  return true;
}

bool take_string(const JsonValue& doc, const char* key, std::string* out,
                 bool* seen, std::string* error) {
  const JsonValue* field = doc.find(key);
  if (field == nullptr) return true;
  if (!field->is_string()) {
    *error = std::string(key) + " must be a string";
    return false;
  }
  *out = std::string(field->as_string());
  *seen = true;
  return true;
}

/// %XX and '+' decoding for HTTP query values.
std::string url_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    const char c = in[i];
    if (c == '+') {
      out.push_back(' ');
    } else if (c == '%' && i + 2 < in.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      const int hi = hex(in[i + 1]);
      const int lo = hex(in[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back(c);
      }
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFramePrefixBytes + payload.size());
  append_be32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::optional<std::string> FrameDecoder::next() {
  if (bad_) return std::nullopt;
  if (buffer_.size() < kFramePrefixBytes) return std::nullopt;
  const std::uint32_t length = read_be32(buffer_.data());
  if (length > max_frame_bytes_) {
    bad_ = true;
    error_ = "frame length " + std::to_string(length) + " exceeds cap " +
             std::to_string(max_frame_bytes_);
    return std::nullopt;
  }
  if (buffer_.size() < kFramePrefixBytes + length) return std::nullopt;
  std::string payload = buffer_.substr(kFramePrefixBytes, length);
  buffer_.erase(0, kFramePrefixBytes + length);
  return payload;
}

const char* verb_name(Verb verb) noexcept {
  for (const auto& entry : kVerbs) {
    if (entry.verb == verb) return entry.name;
  }
  return "unknown";
}

err::Result<Request> parse_request(std::string_view json) {
  std::string error;
  std::optional<JsonValue> doc = obs::json_parse(json, &error);
  if (!doc.has_value()) {
    return err::Status::invalid_argument("malformed JSON: " + error);
  }
  if (!doc->is_object()) {
    return err::Status::invalid_argument("request must be a JSON object");
  }
  const JsonValue* op = doc->find("op");
  if (op == nullptr || !op->is_string()) {
    return err::Status::invalid_argument("missing string field \"op\"");
  }
  std::optional<Verb> verb = verb_from_name(op->as_string());
  if (!verb.has_value()) {
    return err::Status::invalid_argument(
        "unknown op \"" + std::string(op->as_string()) + "\"");
  }

  Request request;
  request.verb = *verb;
  FieldPresence seen;
  if (!take_number(*doc, "lat", &request.lat, &seen.lat, &error) ||
      !take_number(*doc, "lon", &request.lon, &seen.lon, &error) ||
      !take_number(*doc, "d", &request.d, &seen.d, &error) ||
      !take_number(*doc, "radius_miles", &request.radius_miles, &seen.radius,
                   &error) ||
      !take_size(*doc, "k", &request.k, &error) ||
      !take_size(*doc, "max_hits", &request.max_hits, &error) ||
      !take_string(*doc, "region", &request.region, &seen.region, &error) ||
      !take_string(*doc, "fingerprint", &request.fingerprint,
                   &seen.fingerprint, &error)) {
    return err::Status::invalid_argument(error);
  }
  return validate(std::move(request), seen);
}

bool looks_like_http(std::string_view opening) {
  static constexpr std::string_view kGet = "GET ";
  const std::size_t n = std::min(opening.size(), kGet.size());
  return n > 0 && opening.substr(0, n) == kGet.substr(0, n);
}

bool has_complete_http_request(std::string_view buffer) {
  return buffer.find("\r\n\r\n") != std::string_view::npos ||
         buffer.find("\n\n") != std::string_view::npos;
}

err::Result<Request> parse_http_request(std::string_view head) {
  // Request line: "GET <target> HTTP/1.1".
  const std::size_t line_end = head.find_first_of("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!looks_like_http(line) || line.size() <= 4) {
    return err::Status::invalid_argument("only GET requests are supported");
  }
  line.remove_prefix(4);
  const std::size_t space = line.find(' ');
  std::string_view target =
      space == std::string_view::npos ? line : line.substr(0, space);
  if (target.empty() || target[0] != '/') {
    return err::Status::invalid_argument("bad request target");
  }

  const std::size_t qmark = target.find('?');
  std::string_view path = target.substr(1, qmark == std::string_view::npos
                                               ? std::string_view::npos
                                               : qmark - 1);
  std::optional<Verb> verb = verb_from_name(path);
  if (!verb.has_value()) {
    return err::Status::not_found("unknown path \"/" + std::string(path) +
                                  "\"");
  }

  Request request;
  request.verb = *verb;
  FieldPresence seen;
  std::string_view query =
      qmark == std::string_view::npos ? "" : target.substr(qmark + 1);
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? query : query.substr(0, amp);
    query = amp == std::string_view::npos ? "" : query.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string key = url_decode(pair.substr(0, eq));
    const std::string value = url_decode(pair.substr(eq + 1));
    auto number = [&](double* out, bool* present) -> bool {
      char* end = nullptr;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') return false;
      *out = parsed;
      if (present != nullptr) *present = true;
      return true;
    };
    bool ok = true;
    if (key == "lat") {
      ok = number(&request.lat, &seen.lat);
    } else if (key == "lon") {
      ok = number(&request.lon, &seen.lon);
    } else if (key == "d") {
      ok = number(&request.d, &seen.d);
    } else if (key == "radius_miles") {
      ok = number(&request.radius_miles, &seen.radius);
    } else if (key == "k" || key == "max_hits") {
      double parsed = 0.0;
      ok = number(&parsed, nullptr) && parsed >= 0.0 &&
           parsed == std::floor(parsed);
      if (ok) {
        (key == "k" ? request.k : request.max_hits) =
            static_cast<std::size_t>(parsed);
      }
    } else if (key == "region") {
      request.region = value;
      seen.region = true;
    } else if (key == "fingerprint") {
      request.fingerprint = value;
      seen.fingerprint = true;
    }  // Unknown keys are ignored (forward compatibility).
    if (!ok) {
      return err::Status::invalid_argument("bad query value for \"" + key +
                                           "\"");
    }
  }
  return validate(std::move(request), seen);
}

std::string http_response(int status, std::string_view body_json) {
  const char* reason = "OK";
  if (status == 400) reason = "Bad Request";
  if (status == 404) reason = "Not Found";
  if (status == 503) reason = "Service Unavailable";
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                    "\r\nContent-Type: application/json\r\nContent-Length: " +
                    std::to_string(body_json.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out.append(body_json);
  return out;
}

std::string error_json(const err::Status& status) {
  obs::JsonWriter json;
  json.begin_object();
  json.key("ok").value(false);
  json.key("error").begin_object();
  json.key("code").value(err::code_name(status.code()));
  json.key("message").value(status.message());
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace geonet::serve
